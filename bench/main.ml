(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's
   evaluation (the same rows/series, on the simulated substrate) via
   the experiment registry — run `dune exec bench/main.exe` and diff
   against EXPERIMENTS.md.

   Part 2 runs Bechamel micro-benchmarks of the substrate primitives
   the experiments lean on — one Test.make per component — so
   regressions in the simulator itself are visible. Pass
   `--micro-only` or `--tables-only` to run half of it, `--obs-only`
   to emit just the BENCH_obs.json phase breakdown, `--cache-only`
   for the BENCH_cache.json churn sweep, `--interp-only` for the
   BENCH_interp.json interpreter-throughput sweep, `--fleet-only`
   (optionally with `--fleet-procs N`) for the BENCH_fleet.json fleet
   serving sweep, or `--migrate-only` for the BENCH_migrate.json
   migration-cost decomposition. *)

module Desc = Hipstr_isa.Desc
module Minstr = Hipstr_isa.Minstr
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Registry = Hipstr_experiments.Registry
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine
module Fatbin = Hipstr_compiler.Fatbin
module Galileo = Hipstr_galileo.Galileo
module Rng = Hipstr_util.Rng
module Obs = Hipstr_obs.Obs
module Code_cache = Hipstr_psr.Code_cache
module Vm = Hipstr_psr.Vm
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures. *)

(* Every System an experiment creates reports into Obs.global, so the
   delta of its counters across one experiment is that experiment's
   observed activity — the cache-miss/migration columns the paper
   states but a wall-clock-only harness cannot check. *)
let observed_keys =
  [
    ("translations", [ "psr.cisc.translations"; "psr.risc.translations" ]);
    ("cache-hits", [ "psr.cisc.cache_hits"; "psr.risc.cache_hits" ]);
    ( "cache-misses",
      [
        "psr.cisc.cache_misses.compulsory";
        "psr.cisc.cache_misses.capacity";
        "psr.risc.cache_misses.compulsory";
        "psr.risc.cache_misses.capacity";
      ] );
    ("migrations", [ "system.migrations.security"; "system.migrations.forced" ]);
    ("stack-transforms", [ "migration.stack_transforms" ]);
  ]

let observed_line before after =
  String.concat "  "
    (List.map
       (fun (label, keys) ->
         let total snap =
           List.fold_left (fun acc k -> acc + Obs.Metrics.counter_value snap k) 0 keys
         in
         Printf.sprintf "%s=%d" label (total after - total before))
       observed_keys)

let run_tables ~jobs =
  print_endline "=====================================================================";
  print_endline " HIPStR reproduction: every table and figure of the evaluation";
  print_endline "=====================================================================";
  if jobs <= 1 then
    List.iter
      (fun e ->
        let t0 = Unix.gettimeofday () in
        let before = Obs.snapshot Obs.global in
        Registry.run_and_print e;
        let after = Obs.snapshot Obs.global in
        Printf.printf "[%s regenerated in %.1fs; observed: %s]\n" e.Registry.ex_id
          (Unix.gettimeofday () -. t0)
          (observed_line before after))
      Registry.all
  else begin
    (* Parallel sweep: per-experiment output is buffered and printed
       in registry order (bit-identical tables to -j 1); wall-clock
       attribution is whole-sweep since experiments overlap. *)
    let t0 = Unix.gettimeofday () in
    let before = Obs.snapshot Obs.global in
    let outputs = Registry.run_many ~jobs Registry.all in
    let after = Obs.snapshot Obs.global in
    List.iter print_string outputs;
    Printf.printf "[%d experiments regenerated in %.1fs on %d domains; observed: %s]\n"
      (List.length outputs)
      (Unix.gettimeofday () -. t0)
      jobs (observed_line before after)
  end

(* ------------------------------------------------------------------ *)
(* Part 1.5: phase-attributed cycle breakdowns per workload.

   Each workload runs once in Hipstr mode against a fresh obs context
   with one scheduler-requested migration mid-run, so every phase the
   span profiler knows (exec, translate, migration, stack_transform,
   context_switch_flush) appears with its simulated-cycle share. The
   result lands in BENCH_obs.json — the machine-readable companion to
   the human tables above, diffable across commits. *)

module Json = Hipstr_util.Json

let obs_breakdown_fuel = 120_000

let obs_breakdown_workload (w : Workloads.t) =
  let obs = Obs.create () in
  let sys =
    System.of_fatbin ~obs ~seed:11 ~start_isa:Desc.Cisc ~mode:System.Hipstr
      (Workloads.fatbin w)
  in
  ignore (System.run sys ~fuel:(obs_breakdown_fuel / 2));
  System.request_migration sys;
  ignore (System.run sys ~fuel:(obs_breakdown_fuel / 2));
  let snap = Obs.snapshot obs in
  let phases =
    List.map
      (fun (name, n, cycles) ->
        Json.Obj
          [ ("phase", Json.Str name); ("count", Json.num_of_int n); ("cycles", Json.Num cycles) ])
      (Obs.Export.span_rollup obs)
  in
  let counters =
    List.map
      (fun (label, keys) ->
        let total =
          List.fold_left (fun acc k -> acc + Obs.Metrics.counter_value snap k) 0 keys
        in
        (label, Json.num_of_int total))
      observed_keys
  in
  let audit = Obs.audit obs in
  let audit_counts =
    List.map
      (fun label ->
        ( label,
          Json.num_of_int
            (Obs.Audit.count audit (fun e -> Obs.Audit.kind_label e.Obs.Audit.au_kind = label)) ))
      [ "suspicious"; "decision"; "migration"; "fault"; "sched-migrate" ]
  in
  Json.Obj
    [
      ("name", Json.Str w.Workloads.w_name);
      ("fuel", Json.num_of_int obs_breakdown_fuel);
      ("instructions", Json.num_of_int (System.instructions sys));
      ("cycles", Json.Num (System.cycles sys));
      ("phases", Json.List phases);
      ("counters", Json.Obj counters);
      ("audit", Json.Obj audit_counts);
    ]

let run_obs_breakdown () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "hipstr-bench-obs/1");
        ("mode", Json.Str "hipstr");
        ("seed", Json.num_of_int 11);
        ( "workloads",
          Json.List (List.map obs_breakdown_workload (Workloads.all @ [ Workloads.httpd ])) );
      ]
  in
  Out_channel.with_open_bin "BENCH_obs.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty doc);
      Out_channel.output_string oc "\n");
  Printf.printf "[phase-attributed cycle breakdowns written to BENCH_obs.json]\n"

(* ------------------------------------------------------------------ *)
(* Part 1.6: the cache-churn sweep.

   The acceptance experiment for block-granular eviction: run the
   churn-heavy workloads under capacities small enough that the legacy
   flush policy wipes the cache tens to thousands of times, and
   compare capacity misses / retranslation cycles / end-to-end cycles
   against fifo and clock eviction with the translation memo. The
   result lands in BENCH_cache.json. *)

let churn_fuel = 2_000_000
let churn_workloads = [ "gobmk"; "sphinx3"; "milc"; "bzip2" ]
let churn_capacities = [ 4096; 6144 ]
let churn_policies = [ Code_cache.Flush; Code_cache.Fifo; Code_cache.Clock ]

let churn_point ~name ~capacity policy =
  let w = Workloads.find name in
  let cfg = { Config.default with cache_bytes = capacity; cc_policy = policy } in
  let sys =
    System.of_fatbin ~obs:(Obs.create ()) ~cfg ~seed:9 ~start_isa:Desc.Cisc
      ~mode:System.Psr_only (Workloads.fatbin w)
  in
  ignore (System.run sys ~fuel:churn_fuel);
  let vm_stat f =
    List.fold_left
      (fun acc isa ->
        match System.vm sys isa with
        | vm -> acc + f (Vm.stats vm)
        | exception Invalid_argument _ -> acc)
      0 [ Desc.Cisc; Desc.Risc ]
  in
  ( Json.Obj
      [
        ("policy", Json.Str (Code_cache.policy_name policy));
        ("cycles", Json.Num (System.cycles sys));
        ("flushes", Json.num_of_int (System.cache_flushes sys));
        ("evictions", Json.num_of_int (System.cache_evictions sys));
        ("memo_installs", Json.num_of_int (System.memo_installs sys));
        ("translations", Json.num_of_int (vm_stat (fun s -> s.Vm.translations)));
        ("capacity_misses", Json.num_of_int (vm_stat (fun s -> s.Vm.capacity_misses)));
        ("retranslate_cycles", Json.Num (System.retranslate_cycles sys));
      ],
    System.retranslate_cycles sys )

let run_cache_churn () =
  let points =
    List.map
      (fun name ->
        let caps =
          List.map
            (fun capacity ->
              let flush_json, flush_retrans = churn_point ~name ~capacity Code_cache.Flush in
              let rest =
                List.map
                  (fun p ->
                    let j, r = churn_point ~name ~capacity p in
                    let reduction =
                      if flush_retrans > 0. then 100. *. (flush_retrans -. r) /. flush_retrans
                      else 0.
                    in
                    Json.Obj
                      [
                        ("point", j); ("retranslate_reduction_pct", Json.Num reduction);
                      ])
                  (List.filter (fun p -> p <> Code_cache.Flush) churn_policies)
              in
              Json.Obj
                [
                  ("capacity", Json.num_of_int capacity);
                  ("flush", flush_json);
                  ("eviction", Json.List rest);
                ])
            churn_capacities
        in
        Json.Obj [ ("name", Json.Str name); ("capacities", Json.List caps) ])
      churn_workloads
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "hipstr-bench-cache/1");
        ("mode", Json.Str "psr");
        ("seed", Json.num_of_int 9);
        ("fuel", Json.num_of_int churn_fuel);
        ("workloads", Json.List points);
      ]
  in
  Out_channel.with_open_bin "BENCH_cache.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty doc);
      Out_channel.output_string oc "\n");
  Printf.printf "[cache-churn policy sweep written to BENCH_cache.json]\n"

(* ------------------------------------------------------------------ *)
(* Part 1.7: interpreter host-throughput sweep.

   The acceptance experiment for the predecoded-block interpreter and
   its chaining layer: wall-clock host MIPS (simulated instructions
   per host second) for each workload x mode in three interpreter
   variants — chained (the default: decode cache + block chaining +
   indirect-branch inline caches), no-chain (decode cache only) and
   no-decode-cache (per-instruction re-decode). Each point boots a
   fresh system with observability disabled and takes the best of
   [interp_repeats] runs to shave scheduler noise. All three variants
   of a point must agree exactly — instructions, cycle floats,
   output — so the sweep doubles as a differential check of both fast
   paths. The result lands in BENCH_interp.json. *)

let interp_fuel = 2_000_000
let interp_repeats = 5
let interp_workloads = [ "gobmk"; "bzip2"; "mcf" ]

let interp_modes =
  [ ("native", System.Native); ("psr", System.Psr_only); ("hipstr", System.Hipstr) ]

(* (json key, decode_cache, chain, packed) — chained first so it is
   the reference the others are diffed against. [no_packed] is the
   Minstr.t-dispatch escape hatch with everything else equal, so
   chained/no_packed is the packed-dispatch win in isolation. *)
let interp_variants =
  [
    ("chained", true, true, true);
    ("no_packed", true, true, false);
    ("no_chain", true, false, true);
    ("no_decode_cache", false, false, false);
  ]

let interp_point ~name ~mode ~decode_cache ~chain ~packed =
  let w = Workloads.find name in
  let fb = Workloads.fatbin w in
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to interp_repeats do
    let sys =
      System.of_fatbin ~obs:Obs.disabled ~seed:9 ~start_isa:Desc.Cisc ~decode_cache ~chain
        ~packed ~mode fb
    in
    let t0 = Unix.gettimeofday () in
    ignore (System.run sys ~fuel:interp_fuel);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    last := Some sys
  done;
  let sys = Option.get !last in
  (sys, !best, float_of_int (System.instructions sys) /. !best /. 1e6)

(* One hostprof run per variant: host minor words per retired guest
   instruction under that variant's dispatch configuration. Host
   allocation depends on the OCaml runtime, so the block is flagged
   non-deterministic in-band and bench_gate treats it as
   lower-is-better with its own --max-rise slack. *)
let interp_alloc ~name ~mode ~decode_cache ~chain ~packed =
  let w = Workloads.find name in
  let obs = Obs.create () in
  let hp = Obs.Hostprof.create () in
  Obs.set_hostprof obs hp;
  let sys =
    System.of_fatbin ~obs ~seed:9 ~start_isa:Desc.Cisc ~decode_cache ~chain ~packed ~mode
      (Workloads.fatbin w)
  in
  Obs.Hostprof.start_run hp;
  ignore (System.run sys ~fuel:interp_fuel);
  Obs.Hostprof.stop_run hp ~instructions:(System.instructions sys);
  let wpi = Obs.Hostprof.minor_words_per_instr hp in
  Json.Obj
    [
      ("deterministic", Json.Bool false);
      ( "minor_words_per_instr",
        match wpi with Some v -> Json.Num v | None -> Json.Null );
    ]

(* One extra instrumented run per workload: an enabled context with a
   hostprof attached, so the sweep also reports host minor words per
   retired guest instruction and the per-phase allocation table. Host
   allocation depends on the OCaml runtime, so this section is
   non-deterministic (flagged in-band) — bench_gate ignores it. *)
let interp_hostprof ~name =
  let w = Workloads.find name in
  let obs = Obs.create () in
  let hp = Obs.Hostprof.create () in
  Obs.set_hostprof obs hp;
  let sys =
    System.of_fatbin ~obs ~seed:9 ~start_isa:Desc.Cisc ~mode:System.Psr_only
      (Workloads.fatbin w)
  in
  (* baseline after boot so words/instr measures the run itself *)
  Obs.Hostprof.start_run hp;
  ignore (System.run sys ~fuel:interp_fuel);
  Obs.Hostprof.stop_run hp ~instructions:(System.instructions sys);
  let wpi = Obs.Hostprof.minor_words_per_instr hp in
  Printf.printf "  %-8s hostprof: %s minor words/instr (non-deterministic)\n%!" name
    (match wpi with Some v -> Printf.sprintf "%.3f" v | None -> "n/a");
  Json.Obj
    [
      ("deterministic", Json.Bool false);
      ( "minor_words_per_instr",
        match wpi with Some v -> Json.Num v | None -> Json.Null );
      ( "phases",
        Json.Obj
          (List.map
             (fun (phase, spans, words) ->
               ( phase,
                 Json.Obj
                   [ ("spans", Json.num_of_int spans); ("minor_words", Json.Num words) ] ))
             (Obs.Hostprof.phases hp)) );
    ]

let run_interp () =
  print_endline "";
  print_endline "=====================================================================";
  print_endline " Interpreter host throughput (chained / no-chain / no-decode-cache)";
  print_endline "=====================================================================";
  let points =
    List.map
      (fun name ->
        let modes =
          List.map
            (fun (mode_name, mode) ->
              let runs =
                List.map
                  (fun (vname, decode_cache, chain, packed) ->
                    (vname, interp_point ~name ~mode ~decode_cache ~chain ~packed))
                  interp_variants
              in
              let ref_name, (ref_sys, _, ref_mips) = List.hd runs in
              (* the differential half of the sweep: neither the decode
                 cache nor chaining may be visible to the simulation *)
              List.iter
                (fun (vname, (sys, _, _)) ->
                  if
                    System.instructions sys <> System.instructions ref_sys
                    || System.cycles sys <> System.cycles ref_sys
                    || System.output sys <> System.output ref_sys
                  then
                    failwith
                      (Printf.sprintf
                         "interp sweep: %s/%s diverged between %s and %s (instrs %d vs %d, \
                          cycles %.17g vs %.17g)"
                         name mode_name vname ref_name (System.instructions sys)
                         (System.instructions ref_sys) (System.cycles sys)
                         (System.cycles ref_sys)))
                (List.tl runs);
              let mips_of v =
                let _, (_, _, m) = List.find (fun (n, _) -> n = v) runs in
                m
              in
              let slow = mips_of "no_decode_cache" in
              Printf.printf
                "  %-8s %-7s %9d instrs  chained %7.2f  no-packed %7.2f  no-chain %7.2f  \
                 no-dcache %7.2f MIPS  speedup %.2fx\n\
                 %!"
                name mode_name
                (System.instructions ref_sys)
                ref_mips (mips_of "no_packed") (mips_of "no_chain") slow
                (if slow > 0. then ref_mips /. slow else 0.);
              Json.Obj
                [
                  ("mode", Json.Str mode_name);
                  ("instructions", Json.num_of_int (System.instructions ref_sys));
                  ("cycles", Json.Num (System.cycles ref_sys));
                  ( "variants",
                    Json.Obj
                      (List.map
                         (fun (vname, (_, dt, mips)) ->
                           let _, decode_cache, chain, packed =
                             List.find (fun (n, _, _, _) -> n = vname) interp_variants
                           in
                           ( vname,
                             Json.Obj
                               [
                                 ("seconds", Json.Num dt);
                                 ("mips", Json.Num mips);
                                 ( "alloc",
                                   interp_alloc ~name ~mode ~decode_cache ~chain ~packed );
                               ] ))
                         runs) );
                  ( "speedup",
                    Json.Obj
                      [
                        ( "packed_over_no_packed",
                          Json.Num
                            (let np = mips_of "no_packed" in
                             if np > 0. then ref_mips /. np else 0.) );
                        ( "chained_over_no_chain",
                          Json.Num
                            (let nc = mips_of "no_chain" in
                             if nc > 0. then ref_mips /. nc else 0.) );
                        ( "chained_over_no_decode_cache",
                          Json.Num (if slow > 0. then ref_mips /. slow else 0.) );
                      ] );
                ])
            interp_modes
        in
        Json.Obj
          [
            ("name", Json.Str name);
            ("modes", Json.List modes);
            ("hostprof", interp_hostprof ~name);
          ])
      interp_workloads
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "hipstr-bench-interp/3");
        ("seed", Json.num_of_int 9);
        ("fuel", Json.num_of_int interp_fuel);
        ("repeats", Json.num_of_int interp_repeats);
        ("workloads", Json.List points);
      ]
  in
  Out_channel.with_open_bin "BENCH_interp.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty doc);
      Out_channel.output_string oc "\n");
  Printf.printf "[interpreter throughput sweep written to BENCH_interp.json]\n"

(* ------------------------------------------------------------------ *)
(* Part 1.8: the fleet serving sweep.

   The acceptance experiment for the fleet subsystem: one seeded
   traffic trace served under every scheduling policy at a moderate
   and an overload arrival rate, reporting throughput and the
   p50/p95/p99 tail of open-loop request latency. Everything in
   BENCH_fleet.json derives from the simulated clock, so the file is
   byte-identical whatever -j was (the -j N vs -j 1 diff is the smoke
   test). The default sweep drives 6 x [fleet_procs] = 600 staged
   httpd processes; --fleet-procs scales it down for smoke runs. *)

module Traffic = Hipstr_fleet.Traffic
module Fleet = Hipstr_fleet.Fleet

let fleet_default_procs = 100
let fleet_arrivals = [ Traffic.Poisson 25.; Traffic.Poisson 100. ]
let fleet_policies =
  [ Hipstr_cmp.Cmp.Round_robin; Hipstr_cmp.Cmp.Load_balance; Hipstr_cmp.Cmp.Security_first ]

let fleet_point ~jobs ~procs ~arrival policy =
  let conns =
    Traffic.generate ~seed:1 ~procs ~arrival ~mix:Traffic.default_mix ()
  in
  let cfg = { Fleet.default with fl_policy = policy } in
  let r = Fleet.run ~jobs cfg conns in
  let pc q = Fleet.latency_percentile r q in
  Printf.printf
    "  %-14s %-12s procs=%-4d completed=%-4d killed=%-3d thpt=%.3f/Mcycle p50=%.0f p95=%.0f \
     p99=%.0f\n\
     %!"
    (Hipstr_cmp.Cmp.policy_name policy)
    (Traffic.arrival_name arrival)
    procs r.Fleet.r_completed r.Fleet.r_killed (Fleet.throughput r) (pc 50.) (pc 95.) (pc 99.);
  Json.Obj
    [
      ("policy", Json.Str (Hipstr_cmp.Cmp.policy_name policy));
      ("arrival", Json.Str (Traffic.arrival_name arrival));
      ("procs", Json.num_of_int procs);
      ("completed", Json.num_of_int r.Fleet.r_completed);
      ("killed", Json.num_of_int r.Fleet.r_killed);
      ("shell", Json.num_of_int r.Fleet.r_shell);
      ("out_of_fuel", Json.num_of_int r.Fleet.r_out_of_fuel);
      ("waves", Json.num_of_int r.Fleet.r_waves);
      ("makespan_cycles", Json.Num r.Fleet.r_makespan);
      ("throughput_per_mcycle", Json.Num (Fleet.throughput r));
      ( "latency_cycles",
        Json.Obj
          [
            ("p50", Json.Num (pc 50.));
            ("p95", Json.Num (pc 95.));
            ("p99", Json.Num (pc 99.));
            ("max", Json.Num (pc 100.));
          ] );
      ( "kinds",
        Json.List
          (List.filter_map
             (fun (k, total, completed, killed) ->
               if total = 0 then None
               else
                 Some
                   (Json.Obj
                      [
                        ("kind", Json.Str (Traffic.kind_name k));
                        ("total", Json.num_of_int total);
                        ("completed", Json.num_of_int completed);
                        ("killed", Json.num_of_int killed);
                      ]))
             (Fleet.by_kind r)) );
    ]

let run_fleet ~jobs ~procs =
  print_endline "";
  print_endline "=====================================================================";
  print_endline " Fleet serving sweep (policy x arrival rate, open-loop tail latency)";
  print_endline "=====================================================================";
  let points =
    List.concat_map
      (fun arrival -> List.map (fleet_point ~jobs ~procs ~arrival) fleet_policies)
      fleet_arrivals
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "hipstr-bench-fleet/1");
        ("seed", Json.num_of_int 1);
        ("mode", Json.Str "hipstr");
        ("procs_per_point", Json.num_of_int procs);
        ("mix", Json.Str (Traffic.mix_name Traffic.default_mix));
        ("points", Json.List points);
      ]
  in
  Out_channel.with_open_bin "BENCH_fleet.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty doc);
      Out_channel.output_string oc "\n");
  Printf.printf "[fleet serving sweep written to BENCH_fleet.json]\n"

(* ------------------------------------------------------------------ *)
(* Part 1.9: the migration-cost microbenchmark.

   For every workload: run to a mid-flight checkpoint under an
   evicting code-cache policy, take the snapshot image, and decompose
   the cost of relocating the process to another pool:

   - checkpoint/transfer: the snapshot cost model applied to the real
     image size (serialization scan + interconnect shipping);
   - stack transform: the cycles charged by a forced cross-ISA
     migration fired right after landing (0 when the remaining region
     has no return event to fire it at — reported as migrated=false);
   - retranslate + warm-up, warm vs cold: restore re-materializes
     translated code for free in simulated terms, so the pessimistic
     arrival is modeled by flushing the code caches on landing —
     every translated unit must be re-established before the process
     is back to speed. Warm keeps the translation memo the image
     carries and re-installs at memo cost; cold drops it too (a
     target pool that has never seen the binary) and pays full
     translation cost. Warm must come out cheaper (the snapshot test
     suite and the bench gate pin that down).

   Everything derives from the simulated clock, so BENCH_migrate.json
   is byte-stable across hosts and -j values. *)

module Snapshot = Hipstr_snapshot.Snapshot

let migrate_seed = 7

let migrate_point (w : Workloads.t) =
  let fb = Workloads.fatbin w in
  let cfg = { Config.default with cc_policy = Code_cache.Clock; cache_bytes = 4_096 } in
  let fuel = 3 * w.Workloads.w_fuel in
  let boot () =
    System.of_fatbin ~obs:(Obs.create ()) ~cfg ~seed:migrate_seed ~start_isa:Desc.Cisc
      ~mode:System.Hipstr fb
  in
  (* adaptive checkpoint point, same idea as the round-trip suite:
     back off until the partial run genuinely stops mid-flight *)
  let rec interrupted_at partial =
    let sys = boot () in
    match System.run sys ~fuel:partial with
    | System.Out_of_fuel -> sys
    | _ when partial > 64 -> interrupted_at (partial / 4)
    | _ -> failwith (w.Workloads.w_name ^ ": finished in under 64 instructions")
  in
  let sys = interrupted_at (w.Workloads.w_fuel / 5) in
  let image = Snapshot.checkpoint ~workload:w.Workloads.w_name sys in
  let bytes = String.length image in
  let checkpoint_cycles = Snapshot.checkpoint_cycles ~bytes in
  let transfer_cycles = Snapshot.transfer_cycles ~bytes in
  let restore () = fst (Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb image) in
  let transform_cycles, migrated =
    let sys = restore () in
    System.request_migration sys;
    ignore (System.run sys ~fuel);
    match System.last_migration sys with
    | Some r -> (r.Hipstr_migration.Transform.r_cycles, true)
    | None -> (0., false)
  in
  let flush_vms sys =
    List.iter
      (fun isa ->
        match System.vm sys isa with
        | vm -> Vm.flush vm
        | exception Invalid_argument _ -> ())
      [ Desc.Cisc; Desc.Risc ]
  in
  let finish sys =
    flush_vms sys;
    let before = System.retranslate_cycles sys in
    ignore (System.run sys ~fuel);
    (System.retranslate_cycles sys -. before, System.memo_installs sys)
  in
  let warm_retrans, warm_installs = finish (restore ()) in
  let cold_retrans, _ =
    let sys = restore () in
    System.forget_memo sys;
    finish sys
  in
  Printf.printf
    "  %-12s image=%-7d ckpt=%-8.0f xfer=%-8.0f transform=%-8.0f retranslate: warm=%-7.0f \
     cold=%-7.0f (installs=%d%s)\n\
     %!"
    w.Workloads.w_name bytes checkpoint_cycles transfer_cycles transform_cycles warm_retrans
    cold_retrans warm_installs
    (if migrated then "" else ", no return point to migrate at");
  Json.Obj
    [
      ("workload", Json.Str w.Workloads.w_name);
      ("image_bytes", Json.num_of_int bytes);
      ("checkpoint_cycles", Json.Num checkpoint_cycles);
      ("transfer_cycles", Json.Num transfer_cycles);
      ("transform_cycles", Json.Num transform_cycles);
      ("migrated", Json.Bool migrated);
      ("retranslate_warm_cycles", Json.Num warm_retrans);
      ("retranslate_cold_cycles", Json.Num cold_retrans);
      ("warm_memo_installs", Json.num_of_int warm_installs);
      ( "total_warm_cycles",
        Json.Num (checkpoint_cycles +. transfer_cycles +. transform_cycles +. warm_retrans) );
      ( "total_cold_cycles",
        Json.Num (checkpoint_cycles +. transfer_cycles +. transform_cycles +. cold_retrans) );
    ]

let run_migrate () =
  print_endline "";
  print_endline "=====================================================================";
  print_endline " Migration-cost decomposition (checkpoint/transfer/transform/retranslate)";
  print_endline "=====================================================================";
  let points = List.map migrate_point Workloads.all in
  let total key =
    List.fold_left
      (fun acc p ->
        match p with
        | Json.Obj fields -> (
          match List.assoc key fields with Json.Num v -> acc +. v | _ -> acc)
        | _ -> acc)
      0. points
  in
  let warm = total "total_warm_cycles" and cold = total "total_cold_cycles" in
  Printf.printf "  total migration cost: warm=%.0f cold=%.0f cycles (memo saves %.1f%%)\n" warm
    cold
    (if cold > 0. then 100. *. (cold -. warm) /. cold else 0.);
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "hipstr-bench-migrate/1");
        ("seed", Json.num_of_int migrate_seed);
        ("mode", Json.Str "hipstr");
        ("cc_policy", Json.Str "clock");
        ("cache_bytes", Json.num_of_int 4_096);
        ("total_warm_cycles", Json.Num warm);
        ("total_cold_cycles", Json.Num cold);
        ("points", Json.List points);
      ]
  in
  Out_channel.with_open_bin "BENCH_migrate.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty doc);
      Out_channel.output_string oc "\n");
  Printf.printf "[migration-cost decomposition written to BENCH_migrate.json]\n"

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks of the substrate. *)

let prepared_httpd =
  lazy
    (let fb = Workloads.fatbin Workloads.httpd in
     let mem = Mem.create Hipstr_machine.Layout.mem_size in
     Fatbin.load fb mem;
     (fb, mem))

let bench_decode =
  Test.make ~name:"cisc-decode-1k"
    (Staged.stage @@ fun () ->
    let fb, mem = Lazy.force prepared_httpd in
    let read a = try Mem.read8 mem a with Mem.Fault _ -> -1 in
    let base = (Fatbin.find_func fb "main").fs_cisc.im_entry in
    let acc = ref 0 in
    for i = 0 to 999 do
      match Hipstr_cisc.Isa.decode ~read (base + (i mod 256)) with
      | Some (_, len) -> acc := !acc + len
      | None -> ()
    done;
    !acc)

let bench_encode =
  Test.make ~name:"cisc-encode-1k"
    (Staged.stage @@ fun () ->
    let acc = ref 0 in
    for i = 0 to 999 do
      let s = Hipstr_cisc.Isa.encode ~at:0x10000 (Minstr.Mov (Reg (i mod 5), Imm i)) in
      acc := !acc + String.length s
    done;
    !acc)

let bench_machine_steps =
  Test.make ~name:"simulator-10k-steps"
    (Staged.stage @@ fun () ->
    let w = Workloads.find "bzip2" in
    let sys = System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Native (Workloads.fatbin w) in
    ignore (System.run sys ~fuel:10_000);
    System.instructions sys)

(* The observability contract: with obs disabled every instrumented
   site costs one load-and-branch, so this must sit within noise of
   simulator-10k-steps (which runs with the default enabled context);
   the null-sink variant bounds the enabled-counters cost. *)
let bench_obs_disabled =
  Test.make ~name:"obs-disabled-overhead"
    (Staged.stage @@ fun () ->
    let w = Workloads.find "bzip2" in
    let sys =
      System.of_fatbin ~obs:Obs.disabled ~start_isa:Desc.Cisc ~mode:System.Native
        (Workloads.fatbin w)
    in
    ignore (System.run sys ~fuel:10_000);
    System.instructions sys)

let bench_obs_null_sink =
  Test.make ~name:"obs-null-sink-overhead"
    (Staged.stage @@ fun () ->
    let w = Workloads.find "bzip2" in
    let sys =
      System.of_fatbin ~obs:(Obs.create ()) ~start_isa:Desc.Cisc ~mode:System.Native
        (Workloads.fatbin w)
    in
    ignore (System.run sys ~fuel:10_000);
    System.instructions sys)

let bench_translator =
  Test.make ~name:"psr-translate-program"
    (Staged.stage @@ fun () ->
    let w = Workloads.find "mcf" in
    let sys = System.of_fatbin ~seed:3 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
    ignore (System.run sys ~fuel:50_000);
    (Hipstr_psr.Vm.stats (System.vm sys Desc.Cisc)).translations)

let bench_reloc_map =
  Test.make ~name:"reloc-map-generate"
    (Staged.stage @@ fun () ->
    let fb, _ = Lazy.force prepared_httpd in
    let fs = Fatbin.find_func fb "handle_request" in
    let rng = Rng.create 77 in
    Hipstr_psr.Reloc_map.generate Config.default rng Hipstr_cisc.Isa.desc fs ~hot_regs:[])

let bench_galileo =
  Test.make ~name:"galileo-mine-httpd"
    (Staged.stage @@ fun () ->
    let fb, mem = Lazy.force prepared_httpd in
    List.length (Galileo.mine_program mem fb Desc.Cisc))

let bench_migration =
  Test.make ~name:"forced-migration"
    (Staged.stage @@ fun () ->
    let w = Workloads.find "hmmer" in
    let cfg = { Config.default with migrate_prob = 0.0 } in
    let sys =
      System.of_fatbin ~cfg ~seed:7 ~start_isa:Desc.Cisc ~mode:System.Hipstr (Workloads.fatbin w)
    in
    ignore (System.run sys ~fuel:20_000);
    System.request_migration sys;
    ignore (System.run sys ~fuel:200_000);
    System.forced_migrations sys)

(* The CMP scheduler's own cost: the same total work (4 processes of
   20k instructions each) run through Cmp with an aggressive quantum
   (many context switches) vs directly, one System after another. The
   gap is scheduler bookkeeping + cold-cache restarts. *)
let cmp_procs () =
  let w = Workloads.find "mcf" in
  let fb = Workloads.fatbin w in
  List.init 4 (fun i ->
      Hipstr_cmp.Process.create ~obs:Obs.disabled ~seed:(i + 1)
        ~start_isa:(if i mod 2 = 0 then Desc.Cisc else Desc.Risc)
        ~mode:System.Psr_only ~pid:i ~name:w.w_name ~fuel:20_000 fb)

let bench_cmp_sched =
  Test.make ~name:"cmp-sched-overhead"
    (Staged.stage @@ fun () ->
    let cmp =
      Hipstr_cmp.Cmp.create ~obs:Obs.disabled ~policy:Hipstr_cmp.Cmp.Round_robin ~quantum:2_000
        (cmp_procs ())
    in
    Hipstr_cmp.Cmp.run cmp;
    Hipstr_cmp.Cmp.rounds cmp)

let bench_cmp_baseline =
  Test.make ~name:"cmp-single-baseline"
    (Staged.stage @@ fun () ->
    List.fold_left
      (fun acc p ->
        ignore (Hipstr_cmp.Process.run_slice p ~fuel:20_000);
        acc + Hipstr_cmp.Process.instructions p)
      0 (cmp_procs ()))

let run_micro () =
  print_endline "";
  print_endline "=====================================================================";
  print_endline " Bechamel micro-benchmarks of the substrate";
  print_endline "=====================================================================";
  let test =
    Test.make_grouped ~name:"substrate"
      [
        bench_decode;
        bench_encode;
        bench_machine_steps;
        bench_obs_disabled;
        bench_obs_null_sink;
        bench_translator;
        bench_reloc_map;
        bench_galileo;
        bench_migration;
        bench_cmp_sched;
        bench_cmp_baseline;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]) Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-36s %14.1f ns/run\n" name est
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    results

let () =
  let args = Array.to_list Sys.argv in
  let obs_only = List.mem "--obs-only" args in
  let cache_only = List.mem "--cache-only" args in
  let interp_only = List.mem "--interp-only" args in
  let fleet_only = List.mem "--fleet-only" args in
  let migrate_only = List.mem "--migrate-only" args in
  let solo = obs_only || cache_only || interp_only || fleet_only || migrate_only in
  let tables = (not (List.mem "--micro-only" args)) && not solo in
  let micro = (not (List.mem "--tables-only" args)) && not solo in
  let jobs =
    let rec find = function
      | "-j" :: v :: _ -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | _ -> failwith ("bench: bad -j value " ^ v))
      | _ :: rest -> find rest
      | [] -> 1
    in
    find args
  in
  let fleet_procs =
    let rec find = function
      | "--fleet-procs" :: v :: _ -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | _ -> failwith ("bench: bad --fleet-procs value " ^ v))
      | _ :: rest -> find rest
      | [] -> fleet_default_procs
    in
    find args
  in
  if tables then run_tables ~jobs;
  if tables || obs_only then run_obs_breakdown ();
  if tables || cache_only then run_cache_churn ();
  if tables || interp_only then run_interp ();
  if tables || fleet_only then run_fleet ~jobs ~procs:fleet_procs;
  if tables || migrate_only then run_migrate ();
  if micro then run_micro ()
