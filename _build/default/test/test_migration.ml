(* Migration tests: safety analysis invariants, state transformation
   correctness at many checkpoints (property-style differential), and
   cost attribution. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Safety = Hipstr_migration.Safety
module Transform = Hipstr_migration.Transform
module Machine = Hipstr_machine.Machine
module Workloads = Hipstr_workloads.Workloads
module Fatbin = Hipstr_compiler.Fatbin
module Rng = Hipstr_util.Rng

let test_safety_summary_bounds () =
  List.iter
    (fun (w : Workloads.t) ->
      let fb = Workloads.fatbin w in
      List.iter
        (fun isa ->
          let s = Safety.summarize fb ~from_isa:isa in
          Alcotest.(check bool) "counts within bounds" true
            (s.s_baseline_safe <= s.s_blocks && s.s_ondemand_safe <= s.s_blocks && s.s_blocks > 0);
          Alcotest.(check bool) "fractions in [0,1]" true
            (Safety.fraction_ondemand s >= 0. && Safety.fraction_ondemand s <= 1.))
        [ Desc.Cisc; Desc.Risc ])
    [ Workloads.find "bzip2"; Workloads.find "gobmk" ]

let test_safety_per_block_consistency () =
  let fb = Workloads.fatbin (Workloads.find "mcf") in
  let s = Safety.summarize fb ~from_isa:Desc.Cisc in
  (* recompute by summing block verdicts *)
  let blocks = ref 0 and od = ref 0 in
  Array.iter
    (fun fs ->
      Array.iteri
        (fun l _ ->
          incr blocks;
          if (Safety.block_safety fs Desc.Cisc l).v_ondemand then incr od)
        fs.Fatbin.fs_ir.Hipstr_compiler.Ir.fn_blocks)
    fb.fb_funcs;
  Alcotest.(check int) "block count" s.s_blocks !blocks;
  Alcotest.(check int) "ondemand count" s.s_ondemand_safe !od

let test_entry_blocks_baseline_safe () =
  let fb = Workloads.fatbin (Workloads.find "hmmer") in
  Array.iter
    (fun fs ->
      let v = Safety.block_safety fs Desc.Cisc 0 in
      if not v.v_baseline then Alcotest.failf "%s entry not baseline-safe" fs.Fatbin.fs_name)
    fb.fb_funcs

(* Differential: migrate at many random checkpoints in both
   directions; output must always match the never-migrating run. *)
let test_migration_checkpoint_sweep () =
  let w = Workloads.find "gobmk" in
  let fb = Workloads.fatbin w in
  let reference =
    let sys = System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Native fb in
    ignore (System.run sys ~fuel:(3 * w.w_fuel));
    System.output sys
  in
  let rng = Rng.create 99 in
  let cfg = { Config.default with migrate_prob = 0.0 } in
  List.iter
    (fun isa ->
      for i = 1 to 6 do
        let checkpoint = 3000 + Rng.int rng 100_000 in
        let sys = System.of_fatbin ~cfg ~seed:(50 + i) ~start_isa:isa ~mode:System.Hipstr fb in
        (match System.run sys ~fuel:checkpoint with
        | System.Out_of_fuel ->
          System.request_migration sys;
          (match System.run sys ~fuel:(3 * w.w_fuel) with
          | System.Finished _ -> ()
          | o ->
            Alcotest.failf "checkpoint %d (%s): %s" checkpoint
              (match isa with Desc.Cisc -> "cisc" | _ -> "risc")
              (match o with
              | System.Killed m -> "killed " ^ m
              | System.Out_of_fuel -> "fuel"
              | _ -> "?"));
          Alcotest.(check int) "migrated exactly once" 1 (System.forced_migrations sys);
          Alcotest.(check bool) "ended on the other core" true
            (Machine.active (System.machine sys) = Desc.other isa);
          Alcotest.(check (list int))
            (Printf.sprintf "output at checkpoint %d" checkpoint)
            reference (System.output sys)
        | System.Finished _ -> () (* checkpoint beyond program end *)
        | o ->
          Alcotest.failf "prefix failed: %s"
            (match o with System.Killed m -> m | _ -> "?"))
      done)
    [ Desc.Cisc; Desc.Risc ]

let test_double_migration_round_trip () =
  (* migrate x86 -> ARM -> x86 and still finish correctly *)
  let w = Workloads.find "gobmk" in
  let fb = Workloads.fatbin w in
  let reference =
    let sys = System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Native fb in
    ignore (System.run sys ~fuel:(3 * w.w_fuel));
    System.output sys
  in
  let cfg = { Config.default with migrate_prob = 0.0 } in
  let sys = System.of_fatbin ~cfg ~seed:8 ~start_isa:Desc.Cisc ~mode:System.Hipstr fb in
  (match System.run sys ~fuel:40_000 with System.Out_of_fuel -> () | _ -> Alcotest.fail "early end");
  System.request_migration sys;
  (match System.run sys ~fuel:60_000 with
  | System.Out_of_fuel -> ()
  | System.Finished _ -> Alcotest.fail "finished before second migration"
  | o -> Alcotest.failf "mid: %s" (match o with System.Killed m -> m | _ -> "?"));
  System.request_migration sys;
  (match System.run sys ~fuel:(3 * w.w_fuel) with
  | System.Finished _ -> ()
  | o -> Alcotest.failf "end: %s" (match o with System.Killed m -> m | _ -> "?"));
  Alcotest.(check int) "two forced migrations" 2 (System.forced_migrations sys);
  Alcotest.(check bool) "back on the x86 core" true (Machine.active (System.machine sys) = Desc.Cisc);
  Alcotest.(check (list int)) "output preserved" reference (System.output sys)

let test_migration_cost_model () =
  Alcotest.(check bool) "fixed cost calibrated to the paper's band" true
    (Transform.fixed_cycles > 1_000_000. && Transform.fixed_cycles < 10_000_000.);
  (* destination-core frequency asymmetry: the same cycles cost more
     wall clock on the 2 GHz core *)
  let us_on_arm = Transform.fixed_cycles /. 2000. in
  let us_on_x86 = Transform.fixed_cycles /. 3300. in
  Alcotest.(check bool) "x86->ARM slower than ARM->x86" true (us_on_arm > us_on_x86)

let test_migration_records_work () =
  let w = Workloads.find "gobmk" in
  let cfg = { Config.default with migrate_prob = 0.0 } in
  let sys = System.of_fatbin ~cfg ~seed:3 ~start_isa:Desc.Cisc ~mode:System.Hipstr (Workloads.fatbin w) in
  (match System.run sys ~fuel:50_000 with System.Out_of_fuel -> () | _ -> Alcotest.fail "early");
  System.request_migration sys;
  ignore (System.run sys ~fuel:(3 * w.w_fuel));
  match System.last_migration sys with
  | Some r ->
    Alcotest.(check bool) "frames transformed" true (r.Transform.r_frames >= 1);
    Alcotest.(check bool) "words moved" true (r.Transform.r_words >= r.Transform.r_frames);
    Alcotest.(check bool) "walk completed" true r.Transform.r_complete;
    Alcotest.(check bool) "resume target found" true (r.Transform.r_resume_src <> None);
    Alcotest.(check bool) "cycles charged" true (r.Transform.r_cycles >= Transform.fixed_cycles)
  | None -> Alcotest.fail "no migration recorded"

let () =
  Alcotest.run "migration"
    [
      ( "safety",
        [
          Alcotest.test_case "summary bounds" `Quick test_safety_summary_bounds;
          Alcotest.test_case "per-block consistency" `Quick test_safety_per_block_consistency;
          Alcotest.test_case "entries baseline-safe" `Quick test_entry_blocks_baseline_safe;
        ] );
      ( "transform",
        [
          Alcotest.test_case "checkpoint sweep" `Slow test_migration_checkpoint_sweep;
          Alcotest.test_case "double migration" `Quick test_double_migration_round_trip;
          Alcotest.test_case "cost model" `Quick test_migration_cost_model;
          Alcotest.test_case "records work" `Quick test_migration_records_work;
        ] );
    ]
