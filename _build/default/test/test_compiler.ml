(* End-to-end compiler tests: MiniC source -> fat binary -> native
   execution on each ISA, checking the print trace and exit path. *)

module Desc = Hipstr_isa.Desc
module Machine = Hipstr_machine.Machine
module Exec = Hipstr_machine.Exec
module Sys' = Hipstr_machine.Sys
module Compile = Hipstr_compiler.Compile
module Fatbin = Hipstr_compiler.Fatbin
module Ir = Hipstr_compiler.Ir

let run_native src which ~fuel =
  let _fb, m = Compile.load_program src ~active:which () in
  let trap = Machine.run m ~fuel in
  (trap, Sys'.output (Machine.os m), m)

let check_output ?(fuel = 2_000_000) src expected =
  List.iter
    (fun which ->
      let trap, out, _m = run_native src which ~fuel in
      (match trap with
      | Some (Exec.Exit _) -> ()
      | Some t -> Alcotest.failf "%s: stopped with %s" (match which with Desc.Cisc -> "cisc" | Risc -> "risc") (Exec.string_of_trap t)
      | None -> Alcotest.fail "out of fuel");
      Alcotest.(check (list int))
        (match which with Desc.Cisc -> "cisc output" | Risc -> "risc output")
        expected out)
    [ Desc.Cisc; Desc.Risc ]

let test_return_value () =
  check_output "int main() { print(42); return 0; }" [ 42 ]

let test_arith () =
  check_output
    {| int main() {
         print(2 + 3 * 4);
         print(10 - 7);
         print(20 / 3);
         print(20 % 3);
         print(1 << 10);
         print(-16 >> 2);
         print(12 & 10);
         print(12 | 10);
         print(12 ^ 10);
         print(~0);
         print(-(5));
         return 0;
       } |}
    [ 14; 3; 6; 2; 1024; -4; 8; 14; 6; -1; -5 ]

let test_comparisons () =
  check_output
    {| int main() {
         print(3 < 4); print(4 < 3); print(3 <= 3);
         print(3 == 3); print(3 != 3); print(5 >= 9);
         print(2 > 1); print(!0); print(!7);
         return 0;
       } |}
    [ 1; 0; 1; 1; 0; 0; 1; 1; 0 ]

let test_control_flow () =
  check_output
    {| int main() {
         int i;
         int total = 0;
         for (i = 0; i < 10; i = i + 1) {
           if (i % 2 == 0) { total = total + i; } else { total = total - 1; }
         }
         print(total);
         int n = 5;
         while (n > 0) { print(n); n = n - 1; }
         do { print(99); n = n + 1; } while (n < 2);
         return 0;
       } |}
    [ 15; 5; 4; 3; 2; 1; 99; 99 ]

let test_short_circuit () =
  check_output
    {| int side = 0;
       int bump() { side = side + 1; return 1; }
       int main() {
         int a = 0 && bump();
         print(a); print(side);
         int b = 1 || bump();
         print(b); print(side);
         int c = 1 && bump();
         print(c); print(side);
         return 0;
       } |}
    [ 0; 0; 1; 0; 1; 1 ]

let test_functions () =
  check_output
    {| int add(int a, int b) { return a + b; }
       int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
       int main() {
         print(add(3, 4));
         print(fib(10));
         return 0;
       } |}
    [ 7; 55 ]

let test_many_args () =
  check_output
    {| int sum6(int a, int b, int c, int d, int e, int f) {
         return a + 2*b + 3*c + 4*d + 5*e + 6*f;
       }
       int main() { print(sum6(1, 2, 3, 4, 5, 6)); return 0; } |}
    [ 1 + 4 + 9 + 16 + 25 + 36 ]

let test_arrays_and_pointers () =
  check_output
    {| int g[8] = {1, 2, 3, 4, 5, 6, 7, 8};
       int gsum;
       int main() {
         int i;
         int local[4];
         for (i = 0; i < 4; i = i + 1) { local[i] = g[i] * 10; }
         int total = 0;
         for (i = 0; i < 4; i = i + 1) { total = total + local[i]; }
         print(total);
         int p = &g[0];
         print(*p);
         print(p[3]);
         *p = 100;
         print(g[0]);
         int x = 7;
         int q = &x;
         *q = 11;
         print(x);
         gsum = total + x;
         print(gsum);
         return 0;
       } |}
    [ 100; 1; 4; 100; 11; 111 ]

let test_globals () =
  check_output
    {| int counter = 5;
       int table[3] = {10, 20, 30};
       int bump(int k) { counter = counter + k; return counter; }
       int main() {
         print(bump(1));
         print(bump(2));
         print(table[1]);
         table[2] = counter;
         print(table[2]);
         return 0;
       } |}
    [ 6; 8; 20; 8 ]

let test_function_pointers () =
  check_output
    {| int twice(int x) { return 2 * x; }
       int thrice(int x) { return 3 * x; }
       int main() {
         int f = &twice;
         print((*f)(21));
         f = &thrice;
         print((*f)(7));
         int i;
         for (i = 0; i < 4; i = i + 1) {
           int g = (i % 2 == 0) ? &twice : &thrice;
           print((*g)(i));
         }
         return 0;
       } |}
    [ 42; 21; 0; 3; 4; 9 ]

let test_ternary_nested () =
  check_output
    {| int classify(int x) { return x < 0 ? 0 - 1 : (x == 0 ? 0 : 1); }
       int main() {
         print(classify(-5)); print(classify(0)); print(classify(9));
         return 0;
       } |}
    [ -1; 0; 1 ]

let test_exit_code () =
  let trap, out, _ = run_native "int main() { print(1); exit(7); print(2); return 0; }" Desc.Cisc ~fuel:100000 in
  Alcotest.(check (list int)) "output before exit" [ 1 ] out;
  match trap with
  | Some (Exec.Exit 7) -> ()
  | Some t -> Alcotest.failf "expected exit(7), got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "out of fuel"

let test_brk () =
  check_output
    {| int main() {
         int p = brk(64);
         int q = brk(0);
         print(q - p);
         *p = 1234;
         p[15] = 77;
         print(*p + p[15]);
         return 0;
       } |}
    [ 64; 1311 ]

let test_same_output_both_isas () =
  (* A mixed kernel exercising calls, loops, arrays and arithmetic:
     outputs must agree between ISAs exactly. *)
  let src =
    {| int acc[16];
       int mix(int a, int b) { return (a * 31 + b) ^ (a >> 3); }
       int main() {
         int i;
         int h = 17;
         for (i = 0; i < 64; i = i + 1) {
           h = mix(h, i);
           acc[i % 16] = acc[i % 16] + (h & 255);
         }
         int total = 0;
         for (i = 0; i < 16; i = i + 1) { total = total + acc[i]; }
         print(total);
         print(h);
         return 0;
       } |}
  in
  let _, out_c, _ = run_native src Desc.Cisc ~fuel:2_000_000 in
  let _, out_r, _ = run_native src Desc.Risc ~fuel:2_000_000 in
  Alcotest.(check (list int)) "cross-ISA agreement" out_c out_r;
  Alcotest.(check int) "two outputs" 2 (List.length out_c)

let test_validate_catches_bad_programs () =
  let expect_error src =
    match Compile.to_ir src with
    | exception Compile.Error _ -> ()
    | _ -> Alcotest.fail "expected a compile error"
  in
  expect_error "int main() { return undeclared_var; }";
  expect_error "int main() { return nosuchfunc(1); }";
  expect_error "int f() { return 0; }" (* no main *)

let test_frame_is_symmetric () =
  let fb = Compile.to_fatbin "int f(int a, int b) { int x[4]; x[0]=a; x[1]=b; return x[0]+x[1]; } int main() { return f(1,2); }" in
  let fs = Fatbin.find_func fb "f" in
  (* One frame object shared by both images; entries differ. *)
  Alcotest.(check bool) "entries differ" true (fs.fs_cisc.im_entry <> fs.fs_risc.im_entry);
  Alcotest.(check bool) "frame is 16-aligned" true (fs.fs_frame.frame_bytes mod 16 = 0);
  Alcotest.(check int) "ret slot at top" (fs.fs_frame.frame_bytes - 4) fs.fs_frame.ret_off

let () =
  Alcotest.run "compiler"
    [
      ( "exec",
        [
          Alcotest.test_case "return value" `Quick test_return_value;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "many args" `Quick test_many_args;
          Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "function pointers" `Quick test_function_pointers;
          Alcotest.test_case "nested ternary" `Quick test_ternary_nested;
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "brk heap" `Quick test_brk;
          Alcotest.test_case "cross-ISA agreement" `Quick test_same_output_both_isas;
        ] );
      ( "static",
        [
          Alcotest.test_case "bad programs rejected" `Quick test_validate_catches_bad_programs;
          Alcotest.test_case "frame symmetry" `Quick test_frame_is_symmetric;
        ] );
    ]
