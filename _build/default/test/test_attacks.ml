(* The security heart of the reproduction: a concrete ROP exploit that
   works against the native machine and dies under PSR and HIPStR,
   plus the analysis machinery behind Figures 3-8 and Table 2. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Galileo = Hipstr_galileo.Galileo
module Surface = Hipstr_attacks.Surface
module Brute_force = Hipstr_attacks.Brute_force
module Rop = Hipstr_attacks.Rop
module Jitrop = Hipstr_attacks.Jitrop
module Tailored = Hipstr_attacks.Tailored
module Entropy = Hipstr_attacks.Entropy
module Isomeron = Hipstr_isomeron.Isomeron
module Machine = Hipstr_machine.Machine
module Mem = Hipstr_machine.Mem

let httpd_fb = lazy (Workloads.fatbin Workloads.httpd)

let build_chain () =
  let fb = Lazy.force httpd_fb in
  let mem = Mem.create Hipstr_machine.Layout.mem_size in
  Hipstr_compiler.Fatbin.load fb mem;
  Rop.build_chain mem fb Desc.Cisc ~victim_func:"handle_request"

let test_chain_builds () =
  match build_chain () with
  | None -> Alcotest.fail "no execve chain found in httpd (gadget population too small)"
  | Some chain ->
    Alcotest.(check int) "four register steps" 4 (List.length chain.Rop.c_steps);
    Alcotest.(check bool) "payload covers the return slot" true
      (List.length chain.Rop.c_payload > chain.Rop.c_ret_index);
    Alcotest.(check bool) "fits the network buffer" true (List.length chain.Rop.c_payload <= 512);
    let regs = List.map (fun s -> s.Rop.s_reg) chain.Rop.c_steps in
    Alcotest.(check (list int)) "covers the execve registers" [ 0; 1; 2; 3 ]
      (List.sort compare regs)

let test_exploit_wins_natively () =
  match build_chain () with
  | None -> Alcotest.fail "no chain"
  | Some chain -> (
    let sys = System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Native (Lazy.force httpd_fb) in
    match Rop.deliver sys chain ~fuel:2_000_000 with
    | Rop.Shell ->
      (* execve arguments came from the chain *)
      (match System.shell sys with
      | Some (a1, _, _) -> Alcotest.(check int) "path register delivered" 0x1234 a1
      | None -> Alcotest.fail "shell not recorded")
    | Rop.Crashed m -> Alcotest.failf "native exploit crashed: %s" m
    | Rop.Survived -> Alcotest.fail "native exploit silently absorbed")

let test_exploit_fails_under_psr () =
  match build_chain () with
  | None -> Alcotest.fail "no chain"
  | Some chain ->
    (* PSR must stop the same payload across many randomization
       epochs; a crash is an acceptable outcome, a shell is not. *)
    let shells = ref 0 in
    for seed = 1 to 12 do
      let sys =
        System.of_fatbin ~seed ~start_isa:Desc.Cisc ~mode:System.Psr_only (Lazy.force httpd_fb)
      in
      match Rop.deliver sys chain ~fuel:3_000_000 with
      | Rop.Shell -> incr shells
      | Rop.Crashed _ | Rop.Survived -> ()
    done;
    Alcotest.(check int) "no shell in any epoch" 0 !shells

let test_exploit_fails_under_hipstr () =
  match build_chain () with
  | None -> Alcotest.fail "no chain"
  | Some chain ->
    let cfg = { Config.default with migrate_prob = 1.0 } in
    let shells = ref 0 in
    for seed = 1 to 8 do
      let sys =
        System.of_fatbin ~cfg ~seed ~start_isa:Desc.Cisc ~mode:System.Hipstr (Lazy.force httpd_fb)
      in
      match Rop.deliver sys chain ~fuel:3_000_000 with
      | Rop.Shell -> incr shells
      | Rop.Crashed _ | Rop.Survived -> ()
    done;
    Alcotest.(check int) "no shell under hipstr" 0 !shells

let test_surface_analysis () =
  let fb = Lazy.force httpd_fb in
  let r = Surface.analyze ~seed:1 ~name:"httpd" fb Desc.Cisc in
  Alcotest.(check bool) "has a real gadget population" true (r.r_total > 200);
  Alcotest.(check bool) "most gadgets obfuscated" true (Surface.obfuscated_fraction r > 0.9);
  Alcotest.(check bool) "some survive for brute force" true (r.r_viable > 10);
  Alcotest.(check bool) "viable fraction moderate" true (Surface.viable_fraction r < 0.5);
  Alcotest.(check bool) "unintentional gadgets exist" true (r.r_unintentional > 0);
  (* the CISC/RISC attack-space asymmetry (Section 5.5) *)
  let risc = Surface.analyze ~seed:1 ~name:"httpd-risc" fb Desc.Risc in
  Alcotest.(check bool) "CISC attack space much larger than RISC" true
    (float_of_int r.r_total > 2. *. float_of_int risc.r_total)

let test_brute_force_simulation () =
  let fb = Lazy.force httpd_fb in
  let s = Surface.analyze ~seed:1 ~name:"httpd" fb Desc.Cisc in
  let r = Brute_force.simulate ~name:"httpd" s in
  Alcotest.(check bool) "found a 4-gadget chain to attack" true (r.bf_chain <> None);
  Alcotest.(check bool) "params in a plausible band" true
    (r.bf_params_avg > 1.5 && r.bf_params_avg < 12.);
  Alcotest.(check bool) "entropy tens of bits" true (r.bf_entropy_bits > 20.);
  Alcotest.(check bool) "computationally infeasible" true (Brute_force.is_infeasible r);
  Alcotest.(check bool) "bias variant also infeasible" true
    (r.bf_attempts_bias > Brute_force.infeasible_threshold)

let test_jitrop_analysis () =
  let r = Jitrop.analyze ~name:"httpd" Workloads.httpd ~seed:3 in
  Alcotest.(check bool) "cache surface much smaller than static" true
    (r.jr_in_cache < r.jr_static_total);
  Alcotest.(check bool) "most in-cache gadgets flag the VM" true
    (r.jr_flagging > r.jr_survive_migration);
  Alcotest.(check bool) "final residue is a handful" true (r.jr_final <= r.jr_survive_migration);
  Alcotest.(check bool) "execve infeasible from the residue" true (not r.jr_execve_feasible)

let test_entropy_curves () =
  let curves = Entropy.all ~cfg:Config.default ~max_chain:12 in
  Alcotest.(check int) "four curves" 4 (List.length curves);
  List.iter
    (fun (c : Entropy.curve) ->
      Alcotest.(check int) "12 points" 12 (List.length c.values);
      List.iter (fun (_, v) -> Alcotest.(check bool) "capped" true (v <= Entropy.cap)) c.values)
    curves;
  let value_of label n =
    let c = List.find (fun (c : Entropy.curve) -> c.label = label) curves in
    List.assoc n c.values
  in
  Alcotest.(check (float 1e-9)) "isomeron is 2^n" 256. (value_of "Isomeron" 8);
  Alcotest.(check bool) "hipstr saturates immediately" true (value_of "HIPStR" 1 > 1000.)

let test_tailored_curves () =
  let fb = Lazy.force httpd_fb in
  let mem = Mem.create Hipstr_machine.Layout.mem_size in
  Hipstr_compiler.Fatbin.load fb mem;
  let effects =
    Galileo.mine_program mem fb Desc.Cisc
    |> List.filter (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget)
    |> List.map (Galileo.classify ~sp:7)
  in
  let probs = [ 0.0; 0.5; 1.0 ] in
  let iso = Tailored.curve Tailored.Isomeron_only ~base_gadgets:effects ~psr_gadgets:effects ~probs in
  let hip = Tailored.curve Tailored.Hipstr ~base_gadgets:effects ~psr_gadgets:effects ~probs in
  let at (c : Tailored.curve) p =
    (List.find (fun pt -> pt.Tailored.p_prob = p) c.t_points).Tailored.p_surface
  in
  Alcotest.(check (float 1e-6)) "equal surfaces at p=0" (at iso 0.) (at hip 0.);
  Alcotest.(check bool) "hipstr crushes the surface at p=1" true (at hip 1. < at iso 1. /. 4.);
  Alcotest.(check bool) "hipstr residue tiny" true (at hip 1. < 40.);
  Alcotest.(check bool) "curves decrease" true (at iso 1. < at iso 0.)

let test_isomeron_model () =
  let iso = Isomeron.create ~diversification_prob:1.0 in
  Alcotest.(check (float 1e-9)) "chain success halves per gadget" 0.125
    (Isomeron.chain_success_probability iso ~chain_len:3);
  Alcotest.(check (float 1e-9)) "entropy bits" 3. (Isomeron.entropy_bits iso ~chain_len:3);
  let perf = Isomeron.relative_performance iso ~native_cycles:1_000_000. ~calls:5_000 ~returns:5_000 in
  Alcotest.(check bool) "overhead in a plausible band" true (perf > 0.5 && perf < 0.99);
  let reg_free = Isomeron.gadget_unaffected_probability ~reg_operands:0 in
  Alcotest.(check (float 1e-9)) "register-free gadgets unaffected" 1.0 reg_free;
  Alcotest.(check bool) "register gadgets mostly affected" true
    (Isomeron.gadget_unaffected_probability ~reg_operands:2 < 0.05)

let () =
  Alcotest.run "attacks"
    [
      ( "rop-exploit",
        [
          Alcotest.test_case "chain builds" `Quick test_chain_builds;
          Alcotest.test_case "wins natively" `Quick test_exploit_wins_natively;
          Alcotest.test_case "fails under PSR" `Slow test_exploit_fails_under_psr;
          Alcotest.test_case "fails under HIPStR" `Slow test_exploit_fails_under_hipstr;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "attack surface" `Quick test_surface_analysis;
          Alcotest.test_case "brute force" `Quick test_brute_force_simulation;
          Alcotest.test_case "jit-rop" `Quick test_jitrop_analysis;
          Alcotest.test_case "entropy curves" `Quick test_entropy_curves;
          Alcotest.test_case "tailored curves" `Quick test_tailored_curves;
          Alcotest.test_case "isomeron model" `Quick test_isomeron_model;
        ] );
    ]
