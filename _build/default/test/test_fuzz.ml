(* Differential fuzzing: randomly generated MiniC programs must
   produce identical print traces on every execution configuration —
   native CISC, native RISC, PSR (multiple seeds), and HIPStR with
   forced migration probability 1. This is the strongest correctness
   property the system has: the whole pipeline (parser, compiler, both
   backends, interpreter, PSR translator, relocation maps, migration)
   sits under it. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config

let fuel = 4_000_000

let run_config src ~mode ~isa ~seed =
  match System.create ~seed ~start_isa:isa ~mode ~src () with
  | exception Hipstr_compiler.Compile.Error m -> Error ("compile: " ^ m)
  | sys -> (
    match System.run sys ~fuel with
    | System.Finished _ -> Ok (System.output sys)
    | System.Killed m -> Error ("killed: " ^ m)
    | System.Shell_spawned -> Error "shell"
    | System.Out_of_fuel -> Error "fuel")

let check_program seed =
  let src = Progen.generate seed in
  let configs =
    [
      ("native-cisc", System.Native, Desc.Cisc, 1);
      ("native-risc", System.Native, Desc.Risc, 1);
      ("psr-cisc-a", System.Psr_only, Desc.Cisc, 1 + (seed * 7));
      ("psr-cisc-b", System.Psr_only, Desc.Cisc, 2 + (seed * 13));
      ("psr-risc", System.Psr_only, Desc.Risc, 3 + seed);
      ("hipstr", System.Hipstr, Desc.Cisc, 4 + seed);
    ]
  in
  let results =
    List.map
      (fun (label, mode, isa, s) ->
        let cfg_seed = s in
        (label, run_config src ~mode ~isa ~seed:cfg_seed))
      configs
  in
  match results with
  | (_, Ok reference) :: rest ->
    List.iter
      (fun (label, r) ->
        match r with
        | Ok out ->
          if out <> reference then
            Alcotest.failf "seed %d: %s diverged\nprogram:\n%s\nexpected %s got %s" seed label src
              (String.concat "," (List.map string_of_int reference))
              (String.concat "," (List.map string_of_int out))
        | Error e -> Alcotest.failf "seed %d: %s failed (%s)\nprogram:\n%s" seed label e src)
      rest
  | (_, Error e) :: _ -> Alcotest.failf "seed %d: reference run failed (%s)\nprogram:\n%s" seed e src
  | [] -> ()

let test_fuzz_batch lo hi () =
  for seed = lo to hi do
    check_program seed
  done

let test_generated_programs_nontrivial () =
  (* sanity on the generator itself: programs compile and do work *)
  let sizes = ref [] in
  for seed = 1 to 10 do
    let src = Progen.generate seed in
    sizes := String.length src :: !sizes;
    match run_config src ~mode:System.Native ~isa:Desc.Cisc ~seed:1 with
    | Ok out -> Alcotest.(check int) "prints two values" 2 (List.length out)
    | Error e -> Alcotest.failf "seed %d failed: %s" seed e
  done;
  Alcotest.(check bool) "programs vary in size" true
    (List.length (List.sort_uniq compare !sizes) > 3)

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          Alcotest.test_case "generator sanity" `Quick test_generated_programs_nontrivial;
          Alcotest.test_case "programs 1-25" `Quick (test_fuzz_batch 1 25);
          Alcotest.test_case "programs 26-50" `Quick (test_fuzz_batch 26 50);
          Alcotest.test_case "programs 51-100" `Slow (test_fuzz_batch 51 100);
        ] );
    ]
