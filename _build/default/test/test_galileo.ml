(* Gadget-mining tests: hand-crafted byte sequences with known gadget
   content, the classifier's abstract semantics, and mining properties
   over real binaries. *)

module Galileo = Hipstr_galileo.Galileo
module Minstr = Hipstr_isa.Minstr
module Desc = Hipstr_isa.Desc
module Cisc = Hipstr_cisc.Isa
module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Workloads = Hipstr_workloads.Workloads
module Fatbin = Hipstr_compiler.Fatbin
open Minstr

let reader_of_string s i = if i < 0 || i >= String.length s then -1 else Char.code s.[i]

let assemble instrs =
  let buf = Buffer.create 64 in
  List.iter (fun i -> Buffer.add_string buf (Cisc.encode ~at:(Buffer.length buf) i)) instrs;
  Buffer.contents buf

let mine_string s =
  Galileo.mine ~read:(reader_of_string s) ~which:Desc.Cisc ~ranges:[ (0, String.length s) ] ()

let test_finds_simple_gadget () =
  let code = assemble [ Mov (Reg 1, Reg 2); Pop (Reg 3); Ret ] in
  let gadgets = mine_string code in
  let rets = List.filter (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget) gadgets in
  (* suffixes: [pop;ret], [mov;pop;ret], [ret], plus any unintended *)
  Alcotest.(check bool) "found several suffixes" true (List.length rets >= 3);
  Alcotest.(check bool) "the full suffix is found" true
    (List.exists (fun g -> g.Galileo.g_addr = 0 && List.length g.Galileo.g_instrs = 3) rets)

let test_no_gadget_across_control () =
  (* a jmp between the pop and the ret breaks the chain *)
  let code = assemble [ Pop (Reg 3); Jmp 0x100; Nop; Ret ] in
  let gadgets = mine_string code in
  Alcotest.(check bool) "no chain across the jmp" true
    (not
       (List.exists
          (fun g -> g.Galileo.g_addr = 0 && g.Galileo.g_kind = Galileo.Ret_gadget)
          gadgets))

let test_jop_gadgets () =
  let code = assemble [ Pop (Reg 2); Jmpr (Reg 2) ] in
  let gadgets = mine_string code in
  Alcotest.(check bool) "jop gadget found" true (Galileo.count gadgets Galileo.Jop_gadget >= 1)

let test_unintended_gadget_in_immediate () =
  (* the immediate 0xC3 contains a ret byte *)
  let code = assemble [ Mov (Reg 2, Imm 0xC3); Ret ] in
  let gadgets = mine_string code in
  let unintended =
    List.filter
      (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget && g.Galileo.g_addr <> 0 && g.Galileo.g_addr <> 6)
      gadgets
  in
  Alcotest.(check bool) "unintended decode found" true (List.length unintended >= 1)

let classify instrs =
  Galileo.classify ~sp:7
    { Galileo.g_addr = 0; g_instrs = instrs; g_bytes = 0; g_kind = Galileo.Ret_gadget; g_aligned = true }

let test_classify_pop () =
  let e = classify [ Pop (Reg 3); Ret ] in
  Alcotest.(check bool) "pops r3 at offset 0" true (e.e_pops = [ (3, 0) ]);
  Alcotest.(check (option int)) "delta 8" (Some 8) e.e_stack_delta;
  Alcotest.(check bool) "viable" true (Galileo.is_viable e)

let test_classify_overwritten_pop () =
  let e = classify [ Pop (Reg 3); Mov (Reg 3, Imm 0); Ret ] in
  Alcotest.(check (list (pair int int))) "pop cancelled by overwrite" [] e.e_pops;
  Alcotest.(check bool) "not viable" false (Galileo.is_viable e)

let test_classify_stack_load () =
  let e = classify [ Mov (Reg 1, Mem { base = 7; disp = 12 }); Binop (Add, Reg 7, Imm 8); Ret ] in
  Alcotest.(check bool) "stack load is a pop" true (List.mem (1, 12) e.e_pops);
  Alcotest.(check (option int)) "delta includes sp adjust" (Some 12) e.e_stack_delta

let test_classify_move_propagates_stack () =
  let e = classify [ Pop (Reg 1); Mov (Reg 2, Reg 1); Ret ] in
  Alcotest.(check bool) "both registers hold stack data" true
    (List.mem (1, 0) e.e_pops && List.mem (2, 0) e.e_pops)

let test_classify_clobber_tracking () =
  let e = classify [ Pop (Reg 1); Binop (Xor, Reg 2, Reg 2); Ret ] in
  Alcotest.(check bool) "r2 written" true (List.mem 2 e.e_reg_writes);
  Alcotest.(check bool) "r1 still popped" true (List.mem (1, 0) e.e_pops)

let test_classify_mem_write_and_syscall () =
  let e = classify [ Mov (Mem { base = 2; disp = 0 }, Reg 1); Syscall; Ret ] in
  Alcotest.(check bool) "memory write flagged" true e.e_mem_writes;
  Alcotest.(check bool) "syscall flagged" true e.e_has_syscall

let test_classify_unknown_sp () =
  let e = classify [ Mov (Reg 7, Reg 1); Pop (Reg 2); Ret ] in
  Alcotest.(check (option int)) "sp unknown after mov to sp" None e.e_stack_delta

let test_params_counting () =
  let e = classify [ Pop (Reg 3); Ret ] in
  (* r3 + its stack slot + the return slot *)
  Alcotest.(check int) "randomizable params" 3 (Galileo.randomizable_params e)

let test_mine_program_asymmetry () =
  let fb = Workloads.fatbin (Workloads.find "mcf") in
  let mem = Mem.create Layout.mem_size in
  Fatbin.load fb mem;
  let cisc = Galileo.mine_program mem fb Desc.Cisc in
  let risc = Galileo.mine_program mem fb Desc.Risc in
  let count k l = List.length (List.filter (fun g -> g.Galileo.g_kind = k) l) in
  Alcotest.(check bool) "cisc much larger than risc" true
    (count Galileo.Ret_gadget cisc > 2 * count Galileo.Ret_gadget risc);
  (* RISC gadgets are all word-aligned *)
  List.iter
    (fun g ->
      if g.Galileo.g_addr land 3 <> 0 then Alcotest.failf "unaligned RISC gadget 0x%x" g.Galileo.g_addr)
    risc

let test_gadgets_decode_back () =
  (* every mined gadget must re-decode from memory at its address *)
  let fb = Workloads.fatbin (Workloads.find "lbm") in
  let mem = Mem.create Layout.mem_size in
  Fatbin.load fb mem;
  let read a = try Mem.read8 mem a with Mem.Fault _ -> -1 in
  let gadgets = Galileo.mine_program mem fb Desc.Cisc in
  List.iter
    (fun g ->
      match Cisc.decode ~read g.Galileo.g_addr with
      | Some (i, _) ->
        if i <> List.hd g.Galileo.g_instrs then Alcotest.failf "mismatch at 0x%x" g.Galileo.g_addr
      | None -> Alcotest.failf "gadget at 0x%x does not decode" g.Galileo.g_addr)
    gadgets

let () =
  Alcotest.run "galileo"
    [
      ( "mining",
        [
          Alcotest.test_case "finds suffixes" `Quick test_finds_simple_gadget;
          Alcotest.test_case "no chain across control" `Quick test_no_gadget_across_control;
          Alcotest.test_case "jop gadgets" `Quick test_jop_gadgets;
          Alcotest.test_case "unintended in immediate" `Quick test_unintended_gadget_in_immediate;
          Alcotest.test_case "cisc/risc asymmetry" `Quick test_mine_program_asymmetry;
          Alcotest.test_case "gadgets decode back" `Quick test_gadgets_decode_back;
        ] );
      ( "classifier",
        [
          Alcotest.test_case "pop" `Quick test_classify_pop;
          Alcotest.test_case "overwritten pop" `Quick test_classify_overwritten_pop;
          Alcotest.test_case "stack load" `Quick test_classify_stack_load;
          Alcotest.test_case "move propagation" `Quick test_classify_move_propagates_stack;
          Alcotest.test_case "clobber tracking" `Quick test_classify_clobber_tracking;
          Alcotest.test_case "mem write and syscall" `Quick test_classify_mem_write_and_syscall;
          Alcotest.test_case "unknown sp" `Quick test_classify_unknown_sp;
          Alcotest.test_case "params counting" `Quick test_params_counting;
        ] );
    ]
