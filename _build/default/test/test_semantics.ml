(* Instruction-semantics property tests: every ALU operation and
   condition code is checked against an OCaml reference over random
   operands, on both ISAs, by assembling and executing tiny programs
   on the real machine. *)

module Desc = Hipstr_isa.Desc
module Minstr = Hipstr_isa.Minstr
module W32 = Hipstr_util.Wrap32
module Machine = Hipstr_machine.Machine
module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Exec = Hipstr_machine.Exec
open Minstr

let assemble which base instrs mem =
  let at = ref base in
  List.iter
    (fun i ->
      let bytes =
        match which with
        | Desc.Cisc -> Hipstr_cisc.Isa.encode ~at:!at i
        | Desc.Risc -> Hipstr_risc.Isa.encode ~at:!at i
      in
      Mem.blit_string mem !at bytes;
      at := !at + String.length bytes)
    instrs

(* Run: r1 := a; r2 := b; r1 := r1 op r2; print r1; exit *)
let run_binop which op a b =
  let m = Machine.create ~active:which () in
  let base = Layout.code_base which in
  assemble which base
    [
      Mov (Reg 1, Imm a);
      Mov (Reg 2, Imm b);
      Binop (op, Reg 1, Reg 2);
      Mov (Reg 4, Reg 1) (* keep the result away from the syscall regs *);
      Mov (Reg 0, Imm 4);
      Mov (Reg 1, Reg 4);
      Syscall;
      Mov (Reg 0, Imm 1);
      Mov (Reg 1, Imm 0);
      Syscall;
    ]
    (Machine.mem m);
  Machine.boot m ~entry:base;
  match Machine.run m ~fuel:100 with
  | Some (Exec.Exit 0) -> (
    match Hipstr_machine.Sys.output (Machine.os m) with
    | [ v ] -> v
    | _ -> failwith "bad output")
  | t -> failwith ("run failed: " ^ match t with Some t -> Exec.string_of_trap t | None -> "fuel")

let reference op a b =
  match op with
  | Add -> W32.add a b
  | Sub -> W32.sub a b
  | Mul -> W32.mul a b
  | Divs -> W32.sdiv a b
  | Rems -> W32.srem a b
  | And -> W32.logand a b
  | Or -> W32.logor a b
  | Xor -> W32.logxor a b
  | Shl -> W32.shl a b
  | Shr -> W32.shr a b
  | Sar -> W32.sar a b

let operand = QCheck.int_range (-2147483648) 2147483647

let prop_binop which name =
  QCheck.Test.make ~count:300 ~name
    QCheck.(triple (int_range 0 10) operand operand)
    (fun (opi, a, b) ->
      let op = all_binops.(opi) in
      run_binop which op a b = reference op a b)

(* Conditions: cmp a, b then jcc — the branch outcome must match the
   mathematical comparison. *)
let run_cond which c a b =
  let m = Machine.create ~active:which () in
  let base = Layout.code_base which in
  (* taken path prints 1, fallthrough prints 0 *)
  let print_and_exit v skip =
    [
      Mov (Reg 0, Imm 4);
      Mov (Reg 1, Imm v);
      Syscall;
      Mov (Reg 0, Imm 1);
      Mov (Reg 1, Imm 0);
      Syscall;
    ]
    @ skip
  in
  (* layout: cmp; jcc taken; [not-taken block]; taken: [taken block] *)
  let ilen i =
    match which with Desc.Cisc -> Hipstr_cisc.Isa.length i | Desc.Risc -> Hipstr_risc.Isa.length i
  in
  let head = [ Mov (Reg 1, Imm a); Mov (Reg 2, Imm b); Cmp (Reg 1, Reg 2) ] in
  let nottaken = print_and_exit 0 [] in
  let head_len = List.fold_left (fun acc i -> acc + ilen i) 0 head in
  let nt_len = List.fold_left (fun acc i -> acc + ilen i) 0 nottaken in
  let jcc = Jcc (c, base + head_len + ilen (Jcc (c, 0)) + nt_len) in
  let program = head @ [ jcc ] @ nottaken @ print_and_exit 1 [] in
  assemble which base program (Machine.mem m);
  Machine.boot m ~entry:base;
  match Machine.run m ~fuel:100 with
  | Some (Exec.Exit 0) -> (
    match Hipstr_machine.Sys.output (Machine.os m) with
    | [ v ] -> v = 1
    | _ -> failwith "bad output")
  | t -> failwith ("run failed: " ^ match t with Some t -> Exec.string_of_trap t | None -> "fuel")

let cond_reference c a b =
  let ua = W32.unsigned a and ub = W32.unsigned b in
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b
  | Ult -> ua < ub
  | Uge -> ua >= ub

let prop_cond which name =
  QCheck.Test.make ~count:300 ~name
    QCheck.(triple (int_range 0 7) operand operand)
    (fun (ci, a, b) ->
      let c = all_conds.(ci) in
      run_cond which c a b = cond_reference c a b)

(* Cross-ISA agreement on random straight-line register programs. *)
let prop_cross_isa_straightline =
  QCheck.Test.make ~count:100 ~name:"random straight-line programs agree across ISAs"
    QCheck.(pair (int_range 0 1000000) (int_range 3 12))
    (fun (seed, len) ->
      let rng = Hipstr_util.Rng.create seed in
      let instrs =
        List.init len (fun _ ->
            let r1 = 1 + Hipstr_util.Rng.int rng 4 in
            let r2 = 1 + Hipstr_util.Rng.int rng 4 in
            match Hipstr_util.Rng.int rng 3 with
            | 0 -> Mov (Reg r1, Imm (Hipstr_util.Rng.int rng 1000 - 500))
            | 1 -> Binop (all_binops.(Hipstr_util.Rng.int rng 11), Reg r1, Reg r2)
            | _ -> Binop (all_binops.(Hipstr_util.Rng.int rng 11), Reg r1, Imm (1 + Hipstr_util.Rng.int rng 31)))
      in
      let tail =
        [ Mov (Reg 4, Reg 1); Mov (Reg 0, Imm 4); Mov (Reg 1, Reg 4); Syscall;
          Mov (Reg 0, Imm 1); Mov (Reg 1, Imm 0); Syscall ]
      in
      let run which =
        let m = Machine.create ~active:which () in
        let base = Layout.code_base which in
        assemble which base (instrs @ tail) (Machine.mem m);
        Machine.boot m ~entry:base;
        match Machine.run m ~fuel:200 with
        | Some (Exec.Exit 0) -> Hipstr_machine.Sys.output (Machine.os m)
        | _ -> failwith "run failed"
      in
      run Desc.Cisc = run Desc.Risc)

let () =
  Alcotest.run "semantics"
    [
      ( "alu",
        [
          QCheck_alcotest.to_alcotest (prop_binop Desc.Cisc "cisc binops vs reference");
          QCheck_alcotest.to_alcotest (prop_binop Desc.Risc "risc binops vs reference");
        ] );
      ( "conditions",
        [
          QCheck_alcotest.to_alcotest (prop_cond Desc.Cisc "cisc conditions vs reference");
          QCheck_alcotest.to_alcotest (prop_cond Desc.Risc "risc conditions vs reference");
        ] );
      ("cross-isa", [ QCheck_alcotest.to_alcotest prop_cross_isa_straightline ]);
    ]
