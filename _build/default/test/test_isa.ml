(* Encoder/decoder round-trip tests for both ISAs, plus the encoding
   properties the security evaluation depends on (one-byte CISC ret,
   RISC alignment). *)

module Minstr = Hipstr_isa.Minstr
module Cisc = Hipstr_cisc.Isa
module Risc = Hipstr_risc.Isa
open Minstr

let reader_of_string ?(at = 0) s i =
  if i - at < 0 || i - at >= String.length s then -1 else Char.code s.[i - at]

let roundtrip_check name encode decode length align ins =
  let at = 0x1000 in
  let bytes = encode ~at ins in
  Alcotest.(check int)
    (name ^ " length agrees")
    (String.length bytes) (length ins);
  if String.length bytes mod align <> 0 then
    Alcotest.failf "%s: misaligned length %d" name (String.length bytes);
  match decode ~read:(reader_of_string ~at bytes) at with
  | None -> Alcotest.failf "%s: failed to decode %s" name (to_string ~reg_name:string_of_int ins)
  | Some (ins', len) ->
    Alcotest.(check int) (name ^ " decode length") (String.length bytes) len;
    if ins <> ins' then
      Alcotest.failf "%s: roundtrip mismatch: %s vs %s" name
        (to_string ~reg_name:string_of_int ins)
        (to_string ~reg_name:string_of_int ins')

let cisc_samples =
  [
    Mov (Reg 0, Reg 3);
    Mov (Reg 2, Imm 123456);
    Mov (Reg 1, Imm (-7));
    Mov (Reg 4, Mem { base = 7; disp = 48 });
    Mov (Mem { base = 7; disp = -4 }, Reg 5);
    Mov (Mem { base = 6; disp = 0 }, Imm 99);
    Lea (3, 7, 1024);
    Binop (Add, Reg 0, Reg 1);
    Binop (Sub, Reg 2, Imm 4);
    Binop (Mul, Reg 3, Mem { base = 7; disp = 8 });
    Binop (Xor, Mem { base = 7; disp = 16 }, Reg 2);
    Binop (Shl, Mem { base = 7; disp = 20 }, Imm 3);
    Binop (Divs, Reg 1, Reg 2);
    Binop (Rems, Reg 1, Imm 10);
    Binop (Sar, Reg 4, Imm 2);
    Cmp (Reg 0, Reg 1);
    Cmp (Reg 0, Imm 5);
    Cmp (Reg 0, Mem { base = 7; disp = 4 });
    Cmp (Mem { base = 7; disp = 4 }, Imm 9);
    Cmp (Mem { base = 7; disp = 4 }, Reg 3);
    Push (Reg 6);
    Push (Imm 0xC3C3);
    Push (Mem { base = 7; disp = 12 });
    Pop (Reg 2);
    Pop (Mem { base = 7; disp = 36 });
    Jmp 0x2000;
    Jcc (Eq, 0x2010);
    Jcc (Ult, 0x900);
    Jmpr (Reg 3);
    Jmpr (Mem { base = 7; disp = 0 });
    Call 0x3000;
    Callr (Reg 1);
    Callr (Mem { base = 7; disp = 8 });
    Ret;
    Syscall;
    Nop;
    Trap 0x1234;
    Callrat { target = 0x800000; src_ret = 0x10040 };
    Retrat (Reg 6);
    Retrat (Mem { base = 7; disp = 0x80C });
  ]

let risc_samples =
  [
    Mov (Reg 0, Reg 15);
    Mov (Reg 2, Imm 100);
    Mov (Reg 2, Imm 123456);
    Mov (Reg 2, Imm (-40000));
    Mov (Reg 4, Mem { base = 13; disp = 48 });
    Mov (Reg 4, Mem { base = 13; disp = 70000 });
    Mov (Mem { base = 13; disp = -4 }, Reg 5);
    Lea (3, 13, 1024);
    Lea (3, 13, 100000);
    Binop (Add, Reg 0, Reg 1);
    Binop (Sub, Reg 2, Imm 4);
    Binop (Mul, Reg 3, Imm 1000000);
    Cmp (Reg 0, Reg 1);
    Cmp (Reg 0, Imm 500000);
    Push (Reg 6);
    Pop (Reg 2);
    Jmp 0x120000;
    Jcc (Ne, 0x120010);
    Jmpr (Reg 3);
    Call 0x130000;
    Callr (Reg 1);
    Retr 14;
    Syscall;
    Nop;
    Trap 0x1234;
    Callrat { target = 0x1800000; src_ret = 0x110040 };
    Retrat (Reg 12);
  ]

let test_cisc_roundtrip () =
  List.iter (roundtrip_check "cisc" Cisc.encode Cisc.decode Cisc.length 1) cisc_samples

let test_risc_roundtrip () =
  List.iter (roundtrip_check "risc" Risc.encode Risc.decode Risc.length 4) risc_samples

let test_cisc_ret_is_one_byte () =
  Alcotest.(check int) "ret opcode" 0xC3 Cisc.ret_opcode;
  Alcotest.(check string) "ret encoding" "\xc3" (Cisc.encode ~at:0 Ret)

let test_cisc_rejects_bad_regs () =
  (* A mod/reg byte with a nibble >= 8 must not decode: this is what
     makes some unaligned byte strings invalid. *)
  let bad = "\x01\x9f" in
  Alcotest.(check bool) "bad reg rejected" true (Cisc.decode ~read:(reader_of_string bad) 0 = None)

let test_cisc_unencodable () =
  Alcotest.(check_raises) "mov mem,mem" (Invalid_argument "cisc: bad mov operands") (fun () ->
      ignore (Cisc.encode ~at:0 (Mov (Mem { base = 0; disp = 0 }, Mem { base = 1; disp = 0 }))));
  Alcotest.(check_raises) "retr" (Invalid_argument "cisc: retr is RISC-only") (fun () ->
      ignore (Cisc.encode ~at:0 (Retr 14)))

let test_risc_encodable_predicate () =
  Alcotest.(check bool) "alu mem operand" false (Risc.encodable (Binop (Add, Reg 0, Mem { base = 13; disp = 0 })));
  Alcotest.(check bool) "mem-to-mem mov" false (Risc.encodable (Mov (Mem { base = 13; disp = 0 }, Mem { base = 13; disp = 4 })));
  Alcotest.(check bool) "push imm" false (Risc.encodable (Push (Imm 1)));
  Alcotest.(check bool) "plain ret" false (Risc.encodable Ret);
  Alcotest.(check bool) "ldr" true (Risc.encodable (Mov (Reg 1, Mem { base = 13; disp = 8 })))

let test_risc_all_lengths_word_multiple () =
  List.iter
    (fun i ->
      let l = Risc.length i in
      if l mod 4 <> 0 then Alcotest.failf "length %d not word multiple" l)
    risc_samples

let test_unintentional_gadget_exists () =
  (* Classic x86 phenomenon: decoding inside an immediate yields a
     valid instruction stream ending in ret. Encode mov r2, 0xC3 and
     decode at the offset of the 0xC3 byte. *)
  let bytes = Cisc.encode ~at:0 (Mov (Reg 2, Imm 0xC3)) in
  let idx = String.index bytes '\xc3' in
  match Cisc.decode ~read:(reader_of_string bytes) idx with
  | Some (Ret, 1) -> ()
  | _ -> Alcotest.fail "expected unintentional ret inside immediate"

let test_minstr_helpers () =
  Alcotest.(check bool) "ret is return" true (is_return Ret);
  Alcotest.(check bool) "retrat is return" true (is_return (Retrat (Reg 0)));
  Alcotest.(check bool) "jcc is control" true (is_control (Jcc (Eq, 0)));
  Alcotest.(check bool) "mov not control" false (is_control (Mov (Reg 0, Reg 1)));
  Alcotest.(check bool) "syscall not control" false (is_control Syscall);
  Alcotest.(check int) "negate involutive" 0
    (List.length
       (List.filter
          (fun c -> negate_cond (negate_cond c) <> c)
          (Array.to_list all_conds)))

let prop_cisc_decode_total =
  (* Decoding arbitrary bytes never crashes and either fails or
     consumes a positive length. *)
  QCheck.Test.make ~count:2000 ~name:"cisc decode total"
    QCheck.(string_of_size (QCheck.Gen.return 12))
    (fun s ->
      if String.length s < 12 then true
      else
        match Cisc.decode ~read:(reader_of_string s) 0 with
        | None -> true
        | Some (_, len) -> len > 0 && len <= 10)

let prop_risc_decode_total =
  QCheck.Test.make ~count:2000 ~name:"risc decode total"
    QCheck.(string_of_size (QCheck.Gen.return 12))
    (fun s ->
      if String.length s < 12 then true
      else
        match Risc.decode ~read:(reader_of_string s) 0 with
        | None -> true
        | Some (_, len) -> len = 4 || len = 8 || len = 12)

let () =
  Alcotest.run "isa"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "cisc" `Quick test_cisc_roundtrip;
          Alcotest.test_case "risc" `Quick test_risc_roundtrip;
        ] );
      ( "encoding-properties",
        [
          Alcotest.test_case "cisc one-byte ret" `Quick test_cisc_ret_is_one_byte;
          Alcotest.test_case "cisc rejects bad registers" `Quick test_cisc_rejects_bad_regs;
          Alcotest.test_case "cisc unencodable shapes" `Quick test_cisc_unencodable;
          Alcotest.test_case "risc encodable predicate" `Quick test_risc_encodable_predicate;
          Alcotest.test_case "risc word lengths" `Quick test_risc_all_lengths_word_multiple;
          Alcotest.test_case "unintentional gadget" `Quick test_unintentional_gadget_exists;
          Alcotest.test_case "minstr helpers" `Quick test_minstr_helpers;
          QCheck_alcotest.to_alcotest prop_cisc_decode_total;
          QCheck_alcotest.to_alcotest prop_risc_decode_total;
        ] );
    ]
