test/test_isa.ml: Alcotest Array Char Hipstr_cisc Hipstr_isa Hipstr_risc List QCheck QCheck_alcotest String
