test/test_minic.ml: Alcotest Format Hipstr_minic List
