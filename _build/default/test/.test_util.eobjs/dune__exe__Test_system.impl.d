test/test_system.ml: Alcotest Hipstr Hipstr_experiments Hipstr_isa Hipstr_machine Hipstr_psr Hipstr_util Hipstr_workloads List String
