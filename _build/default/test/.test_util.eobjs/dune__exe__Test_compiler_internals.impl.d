test/test_compiler_internals.ml: Alcotest Array Hipstr_cisc Hipstr_compiler Hipstr_isa Hipstr_minic Hipstr_risc List Option
