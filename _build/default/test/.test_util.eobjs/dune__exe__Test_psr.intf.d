test/test_psr.mli:
