test/test_fuzz.ml: Alcotest Hipstr Hipstr_compiler Hipstr_isa Hipstr_psr List Progen String
