test/test_galileo.ml: Alcotest Buffer Char Hipstr_cisc Hipstr_compiler Hipstr_galileo Hipstr_isa Hipstr_machine Hipstr_workloads List String
