test/test_psr.ml: Alcotest Hipstr Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_migration Hipstr_psr Hipstr_util List Printf
