test/test_migration.ml: Alcotest Array Hipstr Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_migration Hipstr_psr Hipstr_util Hipstr_workloads List Printf
