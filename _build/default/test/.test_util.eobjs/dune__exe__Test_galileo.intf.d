test/test_galileo.mli:
