test/test_compiler.ml: Alcotest Hipstr_compiler Hipstr_isa Hipstr_machine List
