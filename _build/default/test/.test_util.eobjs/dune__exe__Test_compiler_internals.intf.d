test/test_compiler_internals.mli:
