test/test_psr_internals.mli:
