test/test_machine.ml: Alcotest Hipstr_cisc Hipstr_isa Hipstr_machine Hipstr_risc List String
