test/test_psr_internals.ml: Alcotest Char Hipstr Hipstr_cisc Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_psr Hipstr_risc Hipstr_util Hipstr_workloads Lazy List QCheck QCheck_alcotest String
