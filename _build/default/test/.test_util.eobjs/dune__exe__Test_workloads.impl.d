test/test_workloads.ml: Alcotest Hipstr Hipstr_isa Hipstr_machine Hipstr_psr Hipstr_workloads List
