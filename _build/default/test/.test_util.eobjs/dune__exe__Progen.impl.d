test/progen.ml: Buffer Hipstr_util List Printf String
