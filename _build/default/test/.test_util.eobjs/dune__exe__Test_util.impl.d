test/test_util.ml: Alcotest Array Hipstr_util List QCheck QCheck_alcotest String
