test/test_semantics.ml: Alcotest Array Hipstr_cisc Hipstr_isa Hipstr_machine Hipstr_risc Hipstr_util List QCheck QCheck_alcotest String
