(* MiniC lexer and parser tests. *)

module Ast = Hipstr_minic.Ast
module Lexer = Hipstr_minic.Lexer
module Parser = Hipstr_minic.Parser

let expr = Alcotest.testable (fun ppf _ -> Format.fprintf ppf "<expr>") ( = )

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "int x = 0x1F + 42; // comment\n/* multi\nline */ while") in
  Alcotest.(check bool) "tokens" true
    (toks
    = [
        Lexer.INT_KW;
        IDENT "x";
        ASSIGN;
        NUM 31;
        PLUS;
        NUM 42;
        SEMI;
        WHILE;
        EOF;
      ])

let test_lexer_operators () =
  let toks = List.map fst (Lexer.tokenize "<< >> <= >= == != && || < > = ! & |") in
  Alcotest.(check bool) "operators" true
    (toks
    = [
        Lexer.SHL; SHR; LE; GE; EQ; NE; ANDAND; OROR; LT; GT; ASSIGN; BANG; AMP; PIPE; EOF;
      ])

let test_lexer_line_numbers () =
  match Lexer.tokenize "a\nb\nc" with
  | [ (_, 1); (_, 2); (_, 3); (Lexer.EOF, _) ] -> ()
  | _ -> Alcotest.fail "line numbers wrong"

let test_lexer_errors () =
  Alcotest.check_raises "bad char" (Lexer.Error "line 1: unexpected character '@'") (fun () ->
      ignore (Lexer.tokenize "@"));
  (match Lexer.tokenize "/* unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected error")

let test_precedence () =
  Alcotest.check expr "mul binds tighter"
    (Ast.Bin (Ast.Add, Ast.Num 1, Ast.Bin (Ast.Mul, Ast.Num 2, Ast.Num 3)))
    (Parser.parse_expr "1 + 2 * 3");
  Alcotest.check expr "shift vs compare"
    (Ast.Bin (Ast.Lt, Ast.Bin (Ast.Shl, Ast.Num 1, Ast.Num 2), Ast.Num 9))
    (Parser.parse_expr "1 << 2 < 9");
  Alcotest.check expr "and binds tighter than or"
    (Ast.Bin (Ast.Lor, Ast.Var "a", Ast.Bin (Ast.Land, Ast.Var "b", Ast.Var "c")))
    (Parser.parse_expr "a || b && c");
  Alcotest.check expr "assignment right assoc"
    (Ast.Assign (Ast.Lvar "a", Ast.Assign (Ast.Lvar "b", Ast.Num 1)))
    (Parser.parse_expr "a = b = 1")

let test_unary_and_postfix () =
  Alcotest.check expr "deref of sum" (Ast.Deref (Ast.Var "p")) (Parser.parse_expr "*p");
  Alcotest.check expr "address-of" (Ast.Addr_var "x") (Parser.parse_expr "&x");
  Alcotest.check expr "index" (Ast.Index ("a", Ast.Num 3)) (Parser.parse_expr "a[3]");
  Alcotest.check expr "call" (Ast.Call ("f", [ Ast.Num 1; Ast.Num 2 ])) (Parser.parse_expr "f(1, 2)");
  Alcotest.check expr "indirect call"
    (Ast.Call_ptr (Ast.Var "f", [ Ast.Num 9 ]))
    (Parser.parse_expr "(*f)(9)")

let test_ternary () =
  Alcotest.check expr "ternary"
    (Ast.Cond (Ast.Var "c", Ast.Num 1, Ast.Num 2))
    (Parser.parse_expr "c ? 1 : 2")

let test_program_structure () =
  let p =
    Parser.parse
      {| int g = 3;
         int arr[4] = {1, 2, 3, 4};
         int zeroed[8];
         int f(int a, int b) { return a + b; }
         int main() { int x = f(1, 2); print(x); return 0; } |}
  in
  Alcotest.(check int) "globals" 3 (List.length p.globals);
  Alcotest.(check (list string)) "funcs" [ "f"; "main" ] (Ast.func_names p);
  let arr = List.nth p.globals 1 in
  Alcotest.(check int) "array size" 4 arr.g_size;
  Alcotest.(check (list int)) "array init" [ 1; 2; 3; 4 ] arr.g_init;
  match Ast.find_func p "f" with
  | Some f -> Alcotest.(check (list string)) "params" [ "a"; "b" ] f.f_params
  | None -> Alcotest.fail "f not found"

let test_statements_parse () =
  let p =
    Parser.parse
      {| int main() {
           int i;
           for (int j = 0; j < 4; j = j + 1) { continue; }
           while (i < 3) { i = i + 1; if (i == 2) { break; } }
           do { i = i - 1; } while (i > 0);
           if (i) { print(i); } else { print(0); }
           return i;
         } |}
  in
  match Ast.find_func p "main" with
  | Some f -> Alcotest.(check int) "statement count" 6 (List.length f.f_body)
  | None -> Alcotest.fail "main not found"

let test_parse_errors () =
  let expect_err src =
    match Parser.parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_err "int main( { }";
  expect_err "int main() { int; }";
  expect_err "int main() { 1 + ; }";
  expect_err "int main() { if 1 {} }";
  expect_err "int main() { return 1 }";
  expect_err "int main() { 3 = x; }";
  expect_err "int x[]; int main() {}"

let test_negative_global_init () =
  let p = Parser.parse "int g = -5; int main() { return g; }" in
  let g = List.hd p.globals in
  Alcotest.(check (list int)) "negative init" [ -5 ] g.Ast.g_init

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "unary and postfix" `Quick test_unary_and_postfix;
          Alcotest.test_case "ternary" `Quick test_ternary;
          Alcotest.test_case "program structure" `Quick test_program_structure;
          Alcotest.test_case "statements" `Quick test_statements_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "negative global init" `Quick test_negative_global_init;
        ] );
    ]
