(* White-box compiler tests: IR construction and validation, liveness
   dataflow, register-allocation invariants, frame layout. *)

module Ir = Hipstr_compiler.Ir
module Lower = Hipstr_compiler.Lower
module Liveness = Hipstr_compiler.Liveness
module Regalloc = Hipstr_compiler.Regalloc
module Frame = Hipstr_compiler.Frame
module Compile = Hipstr_compiler.Compile
module Fatbin = Hipstr_compiler.Fatbin
module Parser = Hipstr_minic.Parser
module Desc = Hipstr_isa.Desc

let ir_of src = Lower.program (Parser.parse src)

let func_named ir name =
  List.find (fun (f : Ir.func) -> f.fn_name = name) ir.Ir.pr_funcs

let test_lowering_shapes () =
  let ir =
    ir_of
      {| int f(int a, int b) {
           int x = a + b;
           if (x > 3) { x = x * 2; } else { x = x - 1; }
           while (x > 0) { x = x - 7; }
           return x;
         }
         int main() { return f(1, 2); } |}
  in
  let f = func_named ir "f" in
  Alcotest.(check int) "two params" 2 (List.length f.fn_params);
  Alcotest.(check bool) "several blocks" true (Array.length f.fn_blocks >= 6);
  Alcotest.(check bool) "no locals area (no arrays)" true (f.fn_locals_bytes = 0);
  (* conditions lower to Br terminators, never to flags across blocks *)
  Array.iter
    (fun (b : Ir.block) ->
      match b.b_term with
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> ())
    f.fn_blocks

let test_validation_rejects_broken_ir () =
  let ir = ir_of "int main() { return 1; }" in
  let f = List.hd ir.pr_funcs in
  let broken =
    { ir with pr_funcs = [ { f with fn_blocks = [| { (f.fn_blocks.(0)) with b_term = Ir.Jmp 99 } |] } ] }
  in
  (match Ir.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "label out of range accepted");
  let no_main = { ir with pr_funcs = [ { f with fn_name = "not_main" } ] } in
  match Ir.validate no_main with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing main accepted"

let test_liveness_basic () =
  let ir =
    ir_of
      {| int f(int a) {
           int x = a + 1;
           int y = x * 2;
           return y;
         }
         int main() { return f(3); } |}
  in
  let f = func_named ir "f" in
  let lv = Liveness.analyze f in
  (* parameters have no defining instruction, so they are exactly the
     entry's live-ins (the prologue materializes them) *)
  Alcotest.(check (list int)) "entry live-in = params" (List.sort compare f.fn_params)
    (Liveness.live_in lv 0);
  Alcotest.(check bool) "no values cross calls in a leaf" true
    (Liveness.live_across_call lv = [])

let test_liveness_across_call () =
  let ir =
    ir_of
      {| int g(int a) { return a + 1; }
         int f(int a) {
           int keep = a * 3;
           int r = g(a);
           return keep + r;
         }
         int main() { return f(3); } |}
  in
  let f = func_named ir "f" in
  let lv = Liveness.analyze f in
  Alcotest.(check bool) "a value lives across the call" true
    (List.length (Liveness.live_across_call lv) >= 1)

let test_regalloc_no_interference_violation () =
  (* values simultaneously live must not share a register *)
  let ir =
    ir_of
      {| int f(int a, int b, int c, int d) {
           int w = a + b;
           int x = b + c;
           int y = c + d;
           int z = d + a;
           return w * x + y * z + w * y + x * z;
         }
         int main() { return f(1, 2, 3, 4); } |}
  in
  let f = func_named ir "f" in
  let lv = Liveness.analyze f in
  List.iter
    (fun desc ->
      let alloc = Regalloc.allocate desc f lv in
      (* brute check: replay liveness per block and assert no two
         simultaneously-live register-homed values share a register *)
      Array.iter
        (fun (b : Ir.block) ->
          let live = ref (Liveness.live_out lv b.b_label) in
          ignore live;
          let pairs = Liveness.live_in lv b.b_label in
          let regs =
            List.filter_map
              (fun v -> match alloc.homes.(v) with Regalloc.Hreg r -> Some r | Hslot -> None)
              pairs
          in
          if List.length (List.sort_uniq compare regs) <> List.length regs then
            Alcotest.failf "register shared among simultaneously-live values (block %d)" b.b_label)
        f.fn_blocks)
    [ Hipstr_cisc.Isa.desc; Hipstr_risc.Isa.desc ]

let test_regalloc_syscall_restriction () =
  let ir =
    ir_of
      {| int main() {
           int a = 5;
           int b = 7;
           print(a);
           return a + b;
         } |}
  in
  let f = func_named ir "main" in
  let lv = Liveness.analyze f in
  let across = Liveness.live_across_syscall lv in
  let alloc = Regalloc.allocate Hipstr_cisc.Isa.desc f lv in
  List.iter
    (fun v ->
      match alloc.homes.(v) with
      | Regalloc.Hreg r when r <= 3 ->
        Alcotest.failf "value v%d lives across a syscall but is homed in r%d" v r
      | _ -> ())
    across

let test_frame_layout_structure () =
  let ir =
    ir_of
      {| int callee(int a, int b, int c) { return a + b + c; }
         int f() {
           int arr[10];
           arr[0] = 1;
           return callee(arr[0], 2, 3);
         }
         int main() { return f(); } |}
  in
  let f = func_named ir "f" in
  let lv = Liveness.analyze f in
  let a = Regalloc.allocate Hipstr_cisc.Isa.desc f lv in
  let frame = Frame.layout f ~needs_slot:a.needs_slot in
  Alcotest.(check int) "outgoing words for 3 args" 3 frame.outgoing_words;
  Alcotest.(check int) "locals 40 bytes" 40 frame.locals_bytes;
  Alcotest.(check bool) "16-aligned" true (frame.frame_bytes mod 16 = 0);
  Alcotest.(check int) "ret at the top" (frame.frame_bytes - 4) frame.ret_off;
  Alcotest.(check bool) "scratch below ret" true (frame.scratch_off < frame.ret_off);
  Alcotest.(check int) "incoming arg 1 beyond the frame" (frame.frame_bytes + 4)
    (Frame.incoming_arg_off frame 1)

let test_fatbin_symbols () =
  let fb =
    Compile.to_fatbin
      {| int helper(int x) { return x * 2; }
         int main() { return helper(21); } |}
  in
  let main = Fatbin.find_func fb "main" in
  let helper = Fatbin.find_func fb "helper" in
  (* call-site correspondence across ISAs: same site ids *)
  let sites im = List.map fst (Array.to_list im.Fatbin.im_callsite_ret) in
  Alcotest.(check (list int)) "call sites match across ISAs" (sites main.fs_cisc) (sites main.fs_risc);
  Alcotest.(check int) "one call site in main" 1 (Array.length main.fs_cisc.im_callsite_ret);
  (* address lookups *)
  Alcotest.(check bool) "func_at finds helper" true
    (match Fatbin.func_at fb Desc.Cisc helper.fs_cisc.im_entry with
    | Some fs -> fs.fs_name = "helper"
    | None -> false);
  let _, site = Option.get (Fatbin.callsite_of_ret fb Desc.Cisc (snd main.fs_cisc.im_callsite_ret.(0))) in
  Alcotest.(check int) "callsite_of_ret roundtrip" (fst main.fs_cisc.im_callsite_ret.(0)) site;
  Alcotest.(check bool) "block_starting_at entry" true
    (Fatbin.block_starting_at fb Desc.Cisc main.fs_cisc.im_entry <> None)

let test_code_sections_disjoint () =
  let fb = Compile.to_fatbin "int main() { return 0; }" in
  List.iter
    (fun fs ->
      let c = fs.Fatbin.fs_cisc and r = fs.Fatbin.fs_risc in
      if c.im_entry + c.im_size > r.im_entry && r.im_entry + r.im_size > c.im_entry then
        Alcotest.fail "code sections overlap")
    (Array.to_list fb.fb_funcs)

let () =
  Alcotest.run "compiler-internals"
    [
      ( "ir",
        [
          Alcotest.test_case "lowering shapes" `Quick test_lowering_shapes;
          Alcotest.test_case "validation" `Quick test_validation_rejects_broken_ir;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "liveness basic" `Quick test_liveness_basic;
          Alcotest.test_case "liveness across call" `Quick test_liveness_across_call;
          Alcotest.test_case "regalloc interference" `Quick test_regalloc_no_interference_violation;
          Alcotest.test_case "regalloc syscall restriction" `Quick test_regalloc_syscall_restriction;
        ] );
      ( "layout",
        [
          Alcotest.test_case "frame structure" `Quick test_frame_layout_structure;
          Alcotest.test_case "fatbin symbols" `Quick test_fatbin_symbols;
          Alcotest.test_case "sections disjoint" `Quick test_code_sections_disjoint;
        ] );
    ]
