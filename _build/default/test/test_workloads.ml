(* Every workload must compile, run to completion natively on both
   ISAs with identical output, and survive the full differential
   (native vs PSR vs HIPStR) on a spot-check basis. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads

let run ?cfg ?seed ~mode ~isa (w : Workloads.t) =
  let sys = System.of_fatbin ?cfg ?seed ~start_isa:isa ~mode (Workloads.fatbin w) in
  let o = System.run sys ~fuel:w.w_fuel in
  (o, System.output sys, sys)

let expect_finished (w : Workloads.t) tag o =
  match o with
  | System.Finished 0 -> ()
  | System.Finished c -> Alcotest.failf "%s/%s: exit %d" w.w_name tag c
  | System.Shell_spawned -> Alcotest.failf "%s/%s: shell" w.w_name tag
  | System.Killed m -> Alcotest.failf "%s/%s: killed %s" w.w_name tag m
  | System.Out_of_fuel -> Alcotest.failf "%s/%s: out of fuel" w.w_name tag

let test_native_both_isas (w : Workloads.t) () =
  let o1, out1, s1 = run ~mode:System.Native ~isa:Desc.Cisc w in
  expect_finished w "native-cisc" o1;
  let o2, out2, _ = run ~mode:System.Native ~isa:Desc.Risc w in
  expect_finished w "native-risc" o2;
  Alcotest.(check (list int)) (w.w_name ^ " cross-ISA output") out1 out2;
  Alcotest.(check bool) (w.w_name ^ " produces output") true (List.length out1 > 0);
  Alcotest.(check bool)
    (w.w_name ^ " runs a meaningful number of instructions")
    true
    (Hipstr_machine.Machine.instructions (System.machine s1) > 10_000)

let test_psr_differential (w : Workloads.t) () =
  let _, native_out, _ = run ~mode:System.Native ~isa:Desc.Cisc w in
  let o, psr_out, _ = run ~seed:9 ~mode:System.Psr_only ~isa:Desc.Cisc w in
  expect_finished w "psr" o;
  Alcotest.(check (list int)) (w.w_name ^ " PSR output") native_out psr_out

let test_hipstr_differential (w : Workloads.t) () =
  let cfg = { Config.default with migrate_prob = 1.0 } in
  let _, native_out, _ = run ~mode:System.Native ~isa:Desc.Cisc w in
  let o, out, _ = run ~cfg ~seed:4 ~mode:System.Hipstr ~isa:Desc.Cisc w in
  expect_finished w "hipstr" o;
  Alcotest.(check (list int)) (w.w_name ^ " HIPStR output") native_out out

let test_find_and_names () =
  Alcotest.(check int) "eight SPEC workloads" 8 (List.length Workloads.all);
  Alcotest.(check int) "nine names with httpd" 9 (List.length Workloads.names);
  List.iter (fun n -> ignore (Workloads.find n)) Workloads.names;
  (match Workloads.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "find should raise");
  Alcotest.(check string) "httpd is the victim" "httpd" Workloads.httpd.w_name

let () =
  let per_workload =
    List.concat_map
      (fun (w : Workloads.t) ->
        [
          Alcotest.test_case (w.w_name ^ " native") `Quick (test_native_both_isas w);
          Alcotest.test_case (w.w_name ^ " psr") `Quick (test_psr_differential w);
        ])
      (Workloads.all @ [ Workloads.httpd ])
  in
  Alcotest.run "workloads"
    [
      ("compile-run", per_workload);
      ( "hipstr",
        [
          Alcotest.test_case "bzip2 hipstr" `Quick (test_hipstr_differential (Workloads.find "bzip2"));
          Alcotest.test_case "gobmk hipstr" `Quick (test_hipstr_differential (Workloads.find "gobmk"));
          Alcotest.test_case "httpd hipstr" `Quick (test_hipstr_differential Workloads.httpd);
        ] );
      ("registry", [ Alcotest.test_case "find and names" `Quick test_find_and_names ]);
    ]
