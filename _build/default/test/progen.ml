(* Random MiniC program generation for differential fuzzing.

   Programs are generated to terminate by construction: loops are
   `for` with constant bounds, recursion is absent, and all division
   is well-defined on the simulated machines (division by zero yields
   zero). Every program prints a handful of values derived from its
   computation, which is the observable the differential property
   compares across native CISC, native RISC, PSR and HIPStR runs. *)

module Rng = Hipstr_util.Rng

type ctx = {
  rng : Rng.t;
  vars : string list;  (** in-scope scalar variables (readable) *)
  mutables : string list;  (** assignable subset — excludes loop indices *)
  arrays : (string * int) list;  (** in-scope arrays with sizes *)
  funcs : (string * int) list;  (** defined functions with arity *)
  depth : int;
  in_loop : bool;  (** calls inside loops would compound exponentially *)
  calls_left : int ref;
}

let pick ctx l = List.nth l (Rng.int ctx.rng (List.length l))

let small_const ctx = Rng.int ctx.rng 201 - 100

let rec gen_expr ctx =
  let leaf () =
    match (ctx.vars, Rng.int ctx.rng 3) with
    | [], _ | _, 0 -> string_of_int (small_const ctx)
    | vars, _ -> pick ctx vars
  in
  if ctx.depth <= 0 then leaf ()
  else
    let sub () = gen_expr { ctx with depth = ctx.depth - 1 } in
    match Rng.int ctx.rng 12 with
    | 0 | 1 -> leaf ()
    | 2 -> Printf.sprintf "(%s + %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s - %s)" (sub ()) (sub ())
    | 4 -> Printf.sprintf "(%s * %s)" (sub ()) (sub ())
    | 5 -> Printf.sprintf "(%s / %s)" (sub ()) (sub ())
    | 6 -> Printf.sprintf "(%s %% 97)" (sub ())
    | 7 -> Printf.sprintf "(%s ^ %s)" (sub ()) (sub ())
    | 8 -> Printf.sprintf "(%s & %s)" (sub ()) (sub ())
    | 9 -> Printf.sprintf "((%s << %d) | (%s >> %d))" (sub ()) (Rng.int ctx.rng 8) (sub ()) (Rng.int ctx.rng 8)
    | 10 -> (
      match ctx.arrays with
      | [] -> leaf ()
      | arrays ->
        let a, n = pick ctx arrays in
        Printf.sprintf "%s[(%s & 0x7fffffff) %% %d]" a (sub ()) n)
    | _ -> (
      match ctx.funcs with
      | [] -> leaf ()
      | _ when ctx.in_loop || !(ctx.calls_left) <= 0 -> leaf ()
      | funcs ->
        decr ctx.calls_left;
        let f, arity = pick ctx funcs in
        let args = List.init arity (fun _ -> sub ()) in
        Printf.sprintf "%s(%s)" f (String.concat ", " args))

let gen_cond ctx =
  let a = gen_expr { ctx with depth = 1 } in
  let b = gen_expr { ctx with depth = 1 } in
  let op = pick ctx [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
  Printf.sprintf "%s %s %s" a op b

let rec gen_stmt ctx buf indent =
  let pad = String.make indent ' ' in
  match Rng.int ctx.rng 10 with
  | 0 | 1 | 2 when ctx.mutables <> [] ->
    (* assignment; never to a loop index (that could loop forever) *)
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" pad (pick ctx ctx.mutables) (gen_expr ctx))
  | 3 when ctx.arrays <> [] ->
    let a, n = pick ctx ctx.arrays in
    Buffer.add_string buf
      (Printf.sprintf "%s%s[(%s & 0x7fffffff) %% %d] = %s;\n" pad a (gen_expr { ctx with depth = 1 }) n
         (gen_expr ctx))
  | 4 ->
    (* bounded for loop over a fresh index *)
    let i = Printf.sprintf "i%d" (Rng.int ctx.rng 10000) in
    let n = 1 + Rng.int ctx.rng 8 in
    Buffer.add_string buf (Printf.sprintf "%sint %s;\n" pad i);
    Buffer.add_string buf (Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n" pad i i n i i);
    let inner = { ctx with vars = i :: ctx.vars; depth = max 1 (ctx.depth - 1); in_loop = true } in
    gen_stmts inner buf (indent + 2) (1 + Rng.int ctx.rng 2);
    Buffer.add_string buf (pad ^ "}\n")
  | 5 ->
    Buffer.add_string buf (Printf.sprintf "%sif (%s) {\n" pad (gen_cond ctx));
    gen_stmts { ctx with depth = max 1 (ctx.depth - 1) } buf (indent + 2) 1;
    if Rng.bool ctx.rng then begin
      Buffer.add_string buf (pad ^ "} else {\n");
      gen_stmts { ctx with depth = max 1 (ctx.depth - 1) } buf (indent + 2) 1
    end;
    Buffer.add_string buf (pad ^ "}\n")
  | 6 when ctx.mutables <> [] ->
    (* ternary through a variable *)
    Buffer.add_string buf
      (Printf.sprintf "%s%s = (%s) ? %s : %s;\n" pad (pick ctx ctx.mutables) (gen_cond ctx)
         (gen_expr { ctx with depth = 1 })
         (gen_expr { ctx with depth = 1 }))
  | _ ->
    Buffer.add_string buf
      (Printf.sprintf "%sacc = acc + (%s);\n" pad (gen_expr ctx))

and gen_stmts ctx buf indent n =
  for _ = 1 to n do
    gen_stmt ctx buf indent
  done

let gen_function rng ~name ~arity ~funcs =
  let buf = Buffer.create 256 in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  Buffer.add_string buf
    (Printf.sprintf "int %s(%s) {\n" name
       (String.concat ", " (List.map (fun p -> "int " ^ p) params)));
  let nlocals = 1 + Rng.int rng 3 in
  let locals = List.init nlocals (fun i -> Printf.sprintf "v%d" i) in
  List.iteri
    (fun i v -> Buffer.add_string buf (Printf.sprintf "  int %s = %d;\n" v (i + 1)))
    locals;
  let arr_size = 4 + Rng.int rng 8 in
  Buffer.add_string buf (Printf.sprintf "  int buf[%d];\n" arr_size);
  Buffer.add_string buf "  int acc = 0;\n";
  (* fully initialize the array: uninitialized stack reads are the
     MiniC analog of undefined behaviour, and PSR legitimately changes
     what garbage a frame contains *)
  Buffer.add_string buf "  int bi;\n";
  Buffer.add_string buf
    (Printf.sprintf "  for (bi = 0; bi < %d; bi = bi + 1) { buf[bi] = bi * %d + %d; }\n" arr_size
       (1 + Rng.int rng 9) (Rng.int rng 50));
  let ctx =
    {
      rng;
      vars = "acc" :: (params @ locals);
      mutables = "acc" :: (params @ locals);
      arrays = [ ("buf", arr_size) ];
      funcs;
      depth = 2 + Rng.int rng 2;
      in_loop = false;
      calls_left = ref 2;
    }
  in
  gen_stmts ctx buf 2 (2 + Rng.int rng 4);
  Buffer.add_string buf "  return acc;\n}\n";
  Buffer.contents buf

let generate seed =
  let rng = Rng.create seed in
  let buf = Buffer.create 1024 in
  (* a couple of globals *)
  let gsize = 4 + Rng.int rng 6 in
  Buffer.add_string buf (Printf.sprintf "int gtab[%d] = {%s};\n" gsize
    (String.concat ", " (List.init gsize (fun i -> string_of_int ((i * 7) + 1)))));
  Buffer.add_string buf "int gsum = 3;\n";
  let nfuncs = 1 + Rng.int rng 3 in
  let funcs = ref [] in
  for i = 0 to nfuncs - 1 do
    let name = Printf.sprintf "f%d" i in
    let arity = 1 + Rng.int rng 3 in
    Buffer.add_string buf (gen_function rng ~name ~arity ~funcs:!funcs);
    funcs := (name, arity) :: !funcs
  done;
  (* main: exercise the functions and globals, print results *)
  Buffer.add_string buf "int main() {\n  int acc = 0;\n  int k;\n";
  Buffer.add_string buf "  for (k = 0; k < 5; k = k + 1) {\n";
  List.iter
    (fun (f, arity) ->
      let args = List.init arity (fun i -> Printf.sprintf "(k + %d)" i) in
      Buffer.add_string buf
        (Printf.sprintf "    acc = acc + %s(%s);\n" f (String.concat ", " args)))
    !funcs;
  Buffer.add_string buf (Printf.sprintf "    gsum = gsum + gtab[k %% %d];\n" gsize);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "  print(acc);\n  print(gsum);\n  return 0;\n}\n";
  Buffer.contents buf
