(* System-level behaviours: re-spawn re-randomization (the paper's
   crash/reboot story), deterministic replay, suspicious-event
   accounting, and an experiment-registry smoke test. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Vm = Hipstr_psr.Vm
module Code_cache = Hipstr_psr.Code_cache
module Machine = Hipstr_machine.Machine
module Mem = Hipstr_machine.Mem
module Workloads = Hipstr_workloads.Workloads
module Registry = Hipstr_experiments.Registry
module Table = Hipstr_util.Table

let cache_bytes_of sys =
  let vm = System.vm sys Desc.Cisc in
  let cc = Vm.cache vm in
  let mem = Machine.mem (System.machine sys) in
  let blocks = Code_cache.blocks cc in
  String.concat "|"
    (List.map (fun (b : Code_cache.block) -> Mem.read_string mem b.cb_cache b.cb_size) blocks)

let test_respawn_rerandomizes () =
  (* Two spawns of the same binary with different seeds must produce
     different code-cache contents (PSR re-randomizes on re-spawn; a
     load-time scheme would not). Same seed replays identically. *)
  let w = Workloads.find "mcf" in
  let fb = Workloads.fatbin w in
  let spawn seed =
    let sys = System.of_fatbin ~seed ~start_isa:Desc.Cisc ~mode:System.Psr_only fb in
    (match System.run sys ~fuel:(3 * w.w_fuel) with
    | System.Finished _ -> ()
    | _ -> Alcotest.fail "run failed");
    cache_bytes_of sys
  in
  let a = spawn 1 in
  let b = spawn 2 in
  let a' = spawn 1 in
  Alcotest.(check bool) "different seeds, different randomization" true (a <> b);
  Alcotest.(check string) "same seed replays bit-identically" a a'

let test_modes_isolated () =
  (* Native mode has no VM; asking for one is a programming error. *)
  let sys = System.create ~mode:System.Native ~src:"int main() { return 0; }" () in
  match System.vm sys Desc.Cisc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "native mode handed out a VM"

let test_fuel_accounting () =
  let w = Workloads.find "lbm" in
  let sys = System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  (match System.run sys ~fuel:10_000 with
  | System.Out_of_fuel -> ()
  | _ -> Alcotest.fail "should run out of fuel");
  let i1 = System.instructions sys in
  Alcotest.(check bool) "close to the fuel bound" true (i1 >= 10_000 && i1 < 11_000);
  (* resuming continues from where it stopped *)
  match System.run sys ~fuel:(3 * w.w_fuel) with
  | System.Finished _ -> ()
  | _ -> Alcotest.fail "resume failed"

let test_suspicious_accounting () =
  (* gobmk's function-pointer calls hit untranslated targets at least
     once each: suspicious events must be counted *)
  let w = Workloads.find "gobmk" in
  let sys = System.of_fatbin ~seed:6 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  ignore (System.run sys ~fuel:(3 * w.w_fuel));
  Alcotest.(check bool) "suspicious events observed" true (System.suspicious_events sys >= 1)

let test_registry_complete () =
  let ids = List.map (fun e -> e.Registry.ex_id) Registry.all in
  List.iter
    (fun id ->
      if not (List.mem id ids) then Alcotest.failf "experiment %s missing from the registry" id)
    [
      "table1"; "fig3"; "fig4"; "table2"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
      "fig11"; "fig12"; "fig13"; "fig14"; "httpd"; "ablation-pad";
    ];
  Alcotest.(check int) "sixteen experiments" 16 (List.length Registry.all);
  Alcotest.(check bool) "lookup works" true (Registry.find "fig9" <> None);
  Alcotest.(check bool) "unknown rejected" true (Registry.find "fig99" = None)

let test_fast_experiments_produce_tables () =
  (* run the cheap experiments end to end; shape-check the tables *)
  List.iter
    (fun id ->
      match Registry.find id with
      | None -> Alcotest.failf "missing %s" id
      | Some e ->
        let t = e.Registry.ex_run () in
        let rendered = Table.render t in
        Alcotest.(check bool) (id ^ " non-empty") true (String.length rendered > 80);
        Alcotest.(check bool)
          (id ^ " has multiple rows")
          true
          (List.length (String.split_on_char '\n' rendered) > 3))
    [ "table1"; "fig3"; "fig4"; "table2"; "fig6"; "fig7" ]

let () =
  Alcotest.run "system"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "respawn re-randomizes" `Quick test_respawn_rerandomizes;
          Alcotest.test_case "mode isolation" `Quick test_modes_isolated;
          Alcotest.test_case "fuel accounting" `Quick test_fuel_accounting;
          Alcotest.test_case "suspicious accounting" `Quick test_suspicious_accounting;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "fast experiments" `Quick test_fast_experiments_produce_tables;
        ] );
    ]
