(* Cross-ISA execution migration, live: start a workload on the x86
   core, force a migration mid-run, and watch it finish on the ARM
   core with identical output — then quantify the migration's cost,
   as in Figure 12.

     dune exec examples/migration_demo.exe *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Machine = Hipstr_machine.Machine
module Transform = Hipstr_migration.Transform
module Safety = Hipstr_migration.Safety
module Workloads = Hipstr_workloads.Workloads

let isa_name = function Desc.Cisc -> "x86 (CISC)" | Desc.Risc -> "ARM (RISC)"

let () =
  let w = Workloads.find "hmmer" in
  Printf.printf "workload: %s (%s)\n\n" w.w_name w.w_description;

  (* Reference run, never migrating. *)
  let reference = System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Native (Workloads.fatbin w) in
  ignore (System.run reference ~fuel:(3 * w.w_fuel));
  let expected = System.output reference in

  (* HIPStR run with a forced migration halfway. *)
  let cfg = { Config.default with migrate_prob = 0.0 } in
  let sys = System.of_fatbin ~cfg ~seed:7 ~start_isa:Desc.Cisc ~mode:System.Hipstr (Workloads.fatbin w) in
  Printf.printf "started on %s\n" (isa_name (Machine.active (System.machine sys)));
  (match System.run sys ~fuel:100_000 with
  | System.Out_of_fuel -> ()
  | _ -> failwith "finished before the checkpoint");
  Printf.printf "checkpoint at %d instructions; requesting migration...\n" (System.instructions sys);
  System.request_migration sys;
  (match System.run sys ~fuel:(3 * w.w_fuel) with
  | System.Finished _ -> ()
  | o ->
    failwith
      (match o with
      | System.Killed m -> "killed: " ^ m
      | System.Out_of_fuel -> "out of fuel"
      | _ -> "unexpected"));
  Printf.printf "finished on %s\n\n" (isa_name (Machine.active (System.machine sys)));
  (match System.last_migration sys with
  | Some r ->
    Printf.printf "the migration transformed %d stack frames (%d words moved)\n"
      r.Transform.r_frames r.Transform.r_words;
    Printf.printf "cost: %.0f cycles on the destination core (~%.0f us at 2 GHz)\n"
      r.Transform.r_cycles
      (r.Transform.r_cycles /. 2000.)
  | None -> print_endline "no migration recorded?!");
  Printf.printf "\noutput identical to the never-migrated run: %b\n"
    (System.output sys = expected);

  (* Static migration-safety, as in Figure 6. *)
  let fb = Workloads.fatbin w in
  let sc = Safety.summarize fb ~from_isa:Desc.Cisc in
  let sr = Safety.summarize fb ~from_isa:Desc.Risc in
  Printf.printf "\nmigration-safe basic blocks (on-demand): x86->ARM %.1f%%, ARM->x86 %.1f%%\n"
    (100. *. Safety.fraction_ondemand sc)
    (100. *. Safety.fraction_ondemand sr)
