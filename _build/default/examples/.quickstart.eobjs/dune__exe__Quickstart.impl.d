examples/quickstart.ml: Hipstr Hipstr_isa List Printf String
