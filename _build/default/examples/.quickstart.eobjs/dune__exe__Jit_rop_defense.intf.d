examples/jit_rop_defense.mli:
