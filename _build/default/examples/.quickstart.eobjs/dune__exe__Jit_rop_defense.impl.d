examples/jit_rop_defense.ml: Hipstr Hipstr_attacks Hipstr_isa Hipstr_psr Hipstr_workloads List Printf
