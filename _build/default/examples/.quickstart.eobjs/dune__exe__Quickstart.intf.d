examples/quickstart.mli:
