examples/rop_attack_demo.mli:
