(* The paper's Figure 1 scenario, end to end: a return-oriented
   execve() exploit against the httpd daemon.

   The attacker (full-disclosure threat model) mines the binary with
   Galileo, builds a four-register gadget chain, and delivers it
   through httpd's unchecked request-copy loop. Against the native
   machine the shell spawns; under PSR the overflow lands in a
   randomized frame and the gadgets execute relocated; under HIPStR a
   suspicious code-cache miss can migrate the process mid-exploit.

     dune exec examples/rop_attack_demo.exe *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Fatbin = Hipstr_compiler.Fatbin
module Mem = Hipstr_machine.Mem
module Rop = Hipstr_attacks.Rop

let () =
  let fb = Workloads.fatbin Workloads.httpd in
  let mem = Mem.create Hipstr_machine.Layout.mem_size in
  Fatbin.load fb mem;
  print_endline "[1] mining httpd with Galileo and compiling the exploit...";
  let chain =
    match Rop.build_chain mem fb Desc.Cisc ~victim_func:"handle_request" with
    | Some c -> c
    | None -> failwith "no chain — gadget population too small"
  in
  Printf.printf "    chain: %d payload words; saved return address at word %d\n"
    (List.length chain.Rop.c_payload) chain.Rop.c_ret_index;
  List.iter
    (fun s -> Printf.printf "    gadget 0x%05x pops r%d := %d\n" s.Rop.s_gadget s.Rop.s_reg s.Rop.s_value)
    chain.Rop.c_steps;
  Printf.printf "    final return into the syscall instruction at 0x%05x (eax=11: execve)\n\n"
    chain.Rop.c_syscall_addr;

  print_endline "[2] delivering against the NATIVE machine:";
  let native = System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Native fb in
  (match Rop.deliver native chain ~fuel:2_000_000 with
  | Rop.Shell ->
    let a1, a2, a3 = match System.shell native with Some t -> t | None -> (0, 0, 0) in
    Printf.printf "    execve(%d, %d, %d) reached — SHELL SPAWNED.\n\n" a1 a2 a3
  | o -> Printf.printf "    unexpected: %s\n\n" (match o with Rop.Crashed m -> m | _ -> "survived"));

  print_endline "[3] the same payload against PSR (10 randomization epochs):";
  for seed = 1 to 10 do
    let sys = System.of_fatbin ~seed ~start_isa:Desc.Cisc ~mode:System.Psr_only fb in
    Printf.printf "    epoch %2d: %s\n" seed
      (match Rop.deliver sys chain ~fuel:4_000_000 with
      | Rop.Shell -> "SHELL (!!)"
      | Rop.Crashed m -> "process killed — " ^ m
      | Rop.Survived -> "overflow absorbed, daemon completed normally")
  done;

  print_endline "\n[4] and against full HIPStR (migration probability 1.0):";
  let cfg = { Config.default with migrate_prob = 1.0 } in
  for seed = 1 to 5 do
    let sys = System.of_fatbin ~cfg ~seed ~start_isa:Desc.Cisc ~mode:System.Hipstr fb in
    let verdict =
      match Rop.deliver sys chain ~fuel:4_000_000 with
      | Rop.Shell -> "SHELL (!!)"
      | Rop.Crashed m -> "process killed — " ^ m
      | Rop.Survived -> "overflow absorbed, daemon completed normally"
    in
    Printf.printf "    epoch %2d: %s (%d security migrations)\n" seed verdict
      (System.security_migrations sys)
  done;
  print_endline "\nThe identical bytes that own the native machine are noise under PSR:";
  print_endline "the buffer lives at a randomized offset, the return address at another,";
  print_endline "and any gadget that does run has had its operands relocated."
