(* The JIT-ROP story of Section 7.1: an attacker with an
   arbitrary-read primitive harvests the code cache — the only place
   the randomized code is concretely visible — and tries to chain
   what survives.

     dune exec examples/jit_rop_defense.exe *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Workloads = Hipstr_workloads.Workloads
module Jitrop = Hipstr_attacks.Jitrop
module Vm = Hipstr_psr.Vm

let () =
  print_endline "JIT-ROP against PSR and HIPStR";
  print_endline "--------------------------------";
  List.iter
    (fun name ->
      let w = Workloads.find name in
      let r = Jitrop.analyze ~name w ~seed:11 in
      Printf.printf
        "%-12s static %4d | in-cache %3d | flag the VM %3d | survive migration %2d | final %2d | execve %s\n"
        r.jr_name r.jr_static_total r.jr_in_cache r.jr_flagging r.jr_survive_migration r.jr_final
        (if r.jr_execve_feasible then "FEASIBLE" else "infeasible"))
    [ "bzip2"; "gobmk"; "mcf"; "httpd" ];
  print_endline "";
  print_endline "Reading the columns left to right is the paper's argument:";
  print_endline "  - only steady-state translated code is harvestable (in-cache << static);";
  print_endline "  - almost all of it flags the VM on use (an indirect transfer that";
  print_endline "    misses the code cache), triggering probabilistic migration;";
  print_endline "  - the non-flagging residue inside migration-unsafe blocks is too";
  print_endline "    small to express even the four-gadget execve chain.";
  (* show the live suspicious-event counter *)
  let w = Workloads.httpd in
  let sys = System.of_fatbin ~seed:11 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  ignore (System.run sys ~fuel:(3 * w.w_fuel));
  let st = Vm.stats (System.vm sys Desc.Cisc) in
  Printf.printf
    "\nhttpd steady state: %d translations, %d compulsory / %d capacity misses, %d suspicious events\n"
    st.translations st.compulsory_misses st.capacity_misses st.suspicious
