(* Quickstart: compile a MiniC program to a fat binary and run it on
   the simulated heterogeneous-ISA CMP — natively, under single-ISA
   Program State Relocation, and under full HIPStR.

     dune exec examples/quickstart.exe *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System

let program =
  {| int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
     int main() {
       int i;
       for (i = 1; i <= 10; i = i + 1) { print(fib(i)); }
       return 0;
     } |}

let describe label sys outcome =
  Printf.printf "%-8s %s\n" label
    (match outcome with
    | System.Finished c -> Printf.sprintf "exit %d" c
    | System.Shell_spawned -> "shell?!"
    | System.Killed m -> "killed: " ^ m
    | System.Out_of_fuel -> "out of fuel");
  Printf.printf "         output: %s\n"
    (String.concat " " (List.map string_of_int (System.output sys)));
  Printf.printf "         %d instructions, %.0f cycles, %.3f ms simulated\n"
    (System.instructions sys) (System.cycles sys)
    (1000. *. System.seconds sys)

let () =
  print_endline "HIPStR quickstart: fib(1..10) on the heterogeneous-ISA CMP";
  print_endline "-----------------------------------------------------------";
  (* Native execution on each core of the fat binary. *)
  List.iter
    (fun (label, isa) ->
      let sys = System.create ~mode:System.Native ~start_isa:isa ~src:program () in
      describe label sys (System.run sys ~fuel:3_000_000))
    [ ("x86", Desc.Cisc); ("ARM", Desc.Risc) ];
  (* The same binary under PSR: every function gets a randomized
     calling convention, register allocation and stack coloring, yet
     output is identical. *)
  let psr = System.create ~mode:System.Psr_only ~seed:42 ~src:program () in
  describe "PSR" psr (System.run psr ~fuel:3_000_000);
  (* Full HIPStR: both PSR virtual machines plus probabilistic
     cross-ISA migration on suspicious code-cache misses. *)
  let hip = System.create ~mode:System.Hipstr ~seed:42 ~src:program () in
  describe "HIPStR" hip (System.run hip ~fuel:3_000_000);
  Printf.printf "\nAll four executions print the same trace: state relocation is\n";
  Printf.printf "invisible to legitimate control flow (and only to it).\n"
