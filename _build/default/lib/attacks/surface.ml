module Galileo = Hipstr_galileo.Galileo
module Fatbin = Hipstr_compiler.Fatbin
module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Config = Hipstr_psr.Config
module Reloc_map = Hipstr_psr.Reloc_map
module Rng = Hipstr_util.Rng
open Hipstr_isa

type gadget_info = {
  gi_gadget : Galileo.gadget;
  gi_effect : Galileo.effect;
  gi_unobfuscated_prob : float;
  gi_viable : bool;
  gi_params : int;
}

type report = {
  r_name : string;
  r_total : int;
  r_jop : int;
  r_unobfuscated : float;
  r_viable : int;
  r_unintentional : int;
  r_infos : gadget_info list;
}

let desc_of = function Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc

(* Probability that one sampled map leaves the gadget's effect
   intact. Inert gadgets (no register, stack or memory effect — bare
   rets, sp adjustments) are not counted as surviving: they perform no
   attacker-visible action, and their chaining slot is always
   relocated anyway. *)
let survives_map (map : Reloc_map.t) (eff : Galileo.effect) pad =
  let regs = List.sort_uniq compare (eff.e_reg_reads @ eff.e_reg_writes) in
  let inert =
    regs = [] && eff.e_stack_slots = [] && (not eff.e_mem_writes) && not eff.e_has_syscall
  in
  if inert then 0.
  else
  let regs_identity =
    List.for_all
      (fun r -> match Reloc_map.map_reg map r with Reloc_map.Lreg r' -> r' = r | Reloc_map.Lpad _ -> false)
      regs
  in
  if not regs_identity then 0.
  else
    (* each touched slot keeps its coloring with probability ~1 word
       out of the pad *)
    (4. /. float_of_int pad) ** float_of_int (List.length eff.e_stack_slots)

let analyze ?(samples = 12) ?(cfg = Config.default) ~seed ~name fb which =
  let mem = Mem.create Layout.mem_size in
  Fatbin.load fb mem;
  let gadgets = Galileo.mine_program mem fb which in
  let desc = desc_of which in
  let sp = desc.sp in
  (* Sampled relocation maps per function. *)
  let maps_of : (string, Reloc_map.t list) Hashtbl.t = Hashtbl.create 32 in
  let function_maps fs =
    match Hashtbl.find_opt maps_of fs.Fatbin.fs_name with
    | Some ms -> ms
    | None ->
      let rng = Rng.create (seed lxor Hashtbl.hash fs.Fatbin.fs_name) in
      let ms = List.init samples (fun _ -> Reloc_map.generate cfg rng desc fs ~hot_regs:[]) in
      Hashtbl.replace maps_of fs.Fatbin.fs_name ms;
      ms
  in
  let infos =
    List.filter_map
      (fun g ->
        if g.Galileo.g_kind <> Galileo.Ret_gadget then None
        else
          let eff = Galileo.classify ~sp g in
          let prob =
            match Fatbin.func_at fb which g.Galileo.g_addr with
            | None -> 0.
            | Some fs ->
              let ms = function_maps fs in
              let total =
                List.fold_left (fun acc m -> acc +. survives_map m eff cfg.pad_bytes) 0. ms
              in
              total /. float_of_int (List.length ms)
          in
          Some
            {
              gi_gadget = g;
              gi_effect = eff;
              gi_unobfuscated_prob = prob;
              gi_viable = Galileo.is_viable eff;
              gi_params = Galileo.randomizable_params eff;
            })
      gadgets
  in
  {
    r_name = name;
    r_total = List.length infos;
    r_jop = Galileo.count gadgets Galileo.Jop_gadget;
    r_unobfuscated = List.fold_left (fun acc i -> acc +. i.gi_unobfuscated_prob) 0. infos;
    r_viable = List.length (List.filter (fun i -> i.gi_viable) infos);
    r_unintentional =
      List.length (List.filter (fun i -> not i.gi_gadget.Galileo.g_aligned) infos);
    r_infos = infos;
  }

let obfuscated_fraction r =
  if r.r_total = 0 then 0. else 1. -. (r.r_unobfuscated /. float_of_int r.r_total)

let viable_fraction r = if r.r_total = 0 then 0. else float_of_int r.r_viable /. float_of_int r.r_total
