module Galileo = Hipstr_galileo.Galileo
module Config = Hipstr_psr.Config
module Stats = Hipstr_util.Stats

type chain_step = { st_reg : int; st_gadget_addr : int; st_params : int; st_clobbers : int list }

type result = {
  bf_name : string;
  bf_viable : int;
  bf_params_avg : float;
  bf_entropy_bits : float;
  bf_attempts_nobias : float;
  bf_attempts_bias : float;
  bf_chain : chain_step list option;
}

(* ~1e9 attempts/second for ~30 years *)
let infeasible_threshold = 1e18

let is_infeasible r = r.bf_attempts_nobias > infeasible_threshold && r.bf_attempts_bias > infeasible_threshold

(* Deterministic stand-in for the randomized return-slot position
   A(g): the attacker cannot observe it, the algorithm just needs a
   total order to "prefer" gadgets. *)
let ret_position g =
  let h = g.Galileo.g_addr * 0x9E3779B1 in
  (h lxor (h lsr 13)) land 0xFFF

let execve_regs = [ 0; 1; 2; 3 ]

(* Algorithm 1 fixes an order; clobber constraints can make one order
   infeasible while another works, so all orders are tried (the
   attacker would too). *)
let reg_orders =
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l))) l
  in
  perms execve_regs

let run_algorithm_1 (infos : Surface.gadget_info list) =
  let viable = List.filter (fun i -> i.Surface.gi_viable) infos in
  let rec build established steps = function
    | [] -> Some (List.rev steps)
    | reg :: rest ->
      let candidates =
        List.filter
          (fun i ->
            let eff = i.Surface.gi_effect in
            List.exists (fun (r, _) -> r = reg) eff.Galileo.e_pops
            && not
                 (List.exists
                    (fun c -> c <> reg && List.mem c established)
                    eff.Galileo.e_reg_writes))
          viable
      in
      let sorted =
        List.sort
          (fun a b ->
            compare (ret_position a.Surface.gi_gadget) (ret_position b.Surface.gi_gadget))
          candidates
      in
      (match sorted with
      | [] -> None
      | best :: _ ->
        let eff = best.Surface.gi_effect in
        let step =
          {
            st_reg = reg;
            st_gadget_addr = best.Surface.gi_gadget.Galileo.g_addr;
            st_params = best.Surface.gi_params;
            st_clobbers = List.filter (fun c -> c <> reg) eff.Galileo.e_reg_writes;
          }
        in
        build (reg :: established) (step :: steps) rest)
  in
  let chain =
    List.fold_left
      (fun acc order -> match acc with Some _ -> acc | None -> build [] [] order)
      None reg_orders
  in
  (viable, chain)

let attempts_for (cfg : Config.t) ~bias steps =
  let positions = float_of_int (cfg.pad_bytes / 4) in
  (* Register parameters under the bias: register-resident with
     probability ~0.65 over a handful of registers, otherwise in the
     pad. *)
  let reg_param_states =
    if bias then (0.65 *. 5.) +. (0.35 *. positions) else positions
  in
  List.fold_left
    (fun acc step ->
      (* params = registers + slots + ret; the sprayed data slot is
         free, so one parameter costs nothing *)
      let free = 1 in
      let regs = List.length step.st_clobbers + 1 in
      let others = max 0 (step.st_params - regs - free) in
      acc *. (reg_param_states ** float_of_int regs) *. (positions ** float_of_int others))
    1. steps

let simulate ?(cfg = Config.default) ~name (report : Surface.report) =
  let viable, chain = run_algorithm_1 report.Surface.r_infos in
  let params =
    List.map (fun i -> float_of_int i.Surface.gi_params)
      (List.filter (fun i -> i.Surface.gi_viable) report.Surface.r_infos)
  in
  let params_avg = Stats.mean params in
  let bits_per_param = Hipstr_psr.Reloc_map.entropy_bits_per_param cfg in
  let nobias, bias =
    match chain with
    | Some steps -> (attempts_for cfg ~bias:false steps, attempts_for cfg ~bias:true steps)
    | None -> (infinity, infinity)
  in
  {
    bf_name = name;
    bf_viable = List.length viable;
    bf_params_avg = params_avg;
    bf_entropy_bits = params_avg *. bits_per_param;
    bf_attempts_nobias = nobias;
    bf_attempts_bias = bias;
    bf_chain = chain;
  }
