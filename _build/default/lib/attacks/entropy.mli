(** Entropy comparison across defenses (Figure 7).

    For a gadget chain of length [n], each defense admits an attack
    with some per-attempt success probability; "entropy" in the
    figure's sense is the expected number of states an attacker must
    search (1/success), plotted capped at 1024 as in the paper:

    - Isomeron and heterogeneous-ISA migration alone flip one coin per
      gadget: 2^n;
    - PSR-based systems additionally randomize the chaining slot of
      every gadget over the pad, and — being run-time randomizers —
      re-randomize on every crash, so failed guesses cannot be
      accumulated;
    - HIPStR compounds PSR with the ISA coin. *)

type curve = { label : string; values : (int * float) list  (** chain length -> entropy *) }

val isomeron : max_chain:int -> curve
val het_isa : max_chain:int -> curve
val psr_isomeron : cfg:Hipstr_psr.Config.t -> max_chain:int -> curve
val hipstr : cfg:Hipstr_psr.Config.t -> max_chain:int -> curve

val cap : float
(** The figure's axis cap (1024). *)

val capped : float -> float

val all : cfg:Hipstr_psr.Config.t -> max_chain:int -> curve list
