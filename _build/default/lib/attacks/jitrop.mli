(** Just-in-time code reuse analysis (Figure 5 and the surrounding
    discussion in Section 7.1).

    A JIT-ROP attacker with an arbitrary-read primitive harvests
    *code-cache* pages — the only code whose randomized form is
    concretely observable — so the attack surface is whatever gadgets
    are minable from the translated code after the program reaches
    steady state:

    - the translated units are mined with Galileo (returns in cache
      include [Retrat] and stray 0xC3 bytes inside translated
      immediates);
    - a gadget "flags" the VM if using it requires an indirect control
      transfer that misses the code cache's structures — everything
      except gadgets starting exactly at translated indirect-transfer
      targets (call-site continuations and function entries);
    - under HIPStR, flagged gadgets trigger probabilistic migration,
      so the tailored attacker is left with the non-flagging residue,
      further thinned to those inside blocks where migration cannot
      follow them (the migration-unsafe 22%). *)

type report = {
  jr_name : string;
  jr_static_total : int;  (** all static ret-gadgets, for the fraction *)
  jr_in_cache : int;  (** gadgets harvestable from the code cache *)
  jr_flagging : int;  (** in-cache gadgets whose use causes a cache miss *)
  jr_survive_migration : int;  (** non-flagging *)
  jr_final : int;  (** non-flagging and in migration-unsafe source blocks *)
  jr_execve_feasible : bool;  (** 4-register chain possible from the residue *)
}

val analyze : name:string -> Hipstr_workloads.Workloads.t -> seed:int -> report
(** Run the workload under PSR to steady state on the CISC core and
    analyze its code cache. *)
