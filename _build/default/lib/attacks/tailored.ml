module Galileo = Hipstr_galileo.Galileo
module Isomeron = Hipstr_isomeron.Isomeron

type technique = Isomeron_only | Psr_only | Psr_isomeron | Hipstr

type point = { p_prob : float; p_surface : float }

type curve = { t_label : string; t_points : point list }

let reg_operands (e : Galileo.effect) =
  List.length (List.sort_uniq compare (e.e_reg_reads @ e.e_reg_writes))

let invariant_same_isa e = Isomeron.gadget_unaffected_probability ~reg_operands:(reg_operands e)

let invariant_cross_isa (e : Galileo.effect) =
  (* Across ISAs the code sections are disjoint: a gadget address in
     one ISA's section is wild on the other core, and the migration's
     stack transformation has relocated the payload besides. Nothing
     meaningful is invariant (the paper found at most a couple of
     all-nop survivors per benchmark, and none in five of eight). *)
  ignore e;
  0.0

let label = function
  | Isomeron_only -> "Isomeron"
  | Psr_only -> "PSR"
  | Psr_isomeron -> "PSR + Isomeron"
  | Hipstr -> "HIPStR"

let surface technique ~base_gadgets ~psr_gadgets ~prob =
  let expect invariant gadgets =
    List.fold_left (fun acc e -> acc +. (1. -. prob +. (prob *. invariant e))) 0. gadgets
  in
  match technique with
  | Isomeron_only -> expect invariant_same_isa base_gadgets
  | Psr_only -> float_of_int (List.length psr_gadgets) (* no diversification coin *)
  | Psr_isomeron -> expect invariant_same_isa psr_gadgets
  | Hipstr -> expect invariant_cross_isa psr_gadgets

let curve technique ~base_gadgets ~psr_gadgets ~probs =
  {
    t_label = label technique;
    t_points =
      List.map (fun p -> { p_prob = p; p_surface = surface technique ~base_gadgets ~psr_gadgets ~prob:p }) probs;
  }
