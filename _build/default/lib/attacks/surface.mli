(** Attack-surface analysis (Figures 3 and 4).

    For one binary:
    - mine every gadget with Galileo;
    - decide, per gadget, the probability that PSR leaves its
      register/stack effect intact ("unobfuscated"): sampled over
      fresh relocation maps of the containing function, a gadget
      survives a map only if every register it touches is
      identity-mapped and every sp-relative slot it reads keeps its
      coloring (probability (4/pad)^slots). Gadgets that touch no
      randomizable state at all (pure nop/ret, syscall-only) are
      trivially unobfuscated — these make up the small residue the
      paper reports (1.96% on average), and the attacker still cannot
      tell which ones they are without executing them;
    - classify gadgets viable for brute force (they populate a
      register from attacker-controlled stack data — Section 6). *)

type gadget_info = {
  gi_gadget : Hipstr_galileo.Galileo.gadget;
  gi_effect : Hipstr_galileo.Galileo.effect;
  gi_unobfuscated_prob : float;
  gi_viable : bool;
  gi_params : int;  (** PSR-randomizable parameters *)
}

type report = {
  r_name : string;
  r_total : int;  (** classic ROP gadgets (return-terminated) *)
  r_jop : int;  (** indirect-jump/call-terminated gadgets *)
  r_unobfuscated : float;  (** expected count left intact by PSR *)
  r_viable : int;  (** viable for brute force *)
  r_unintentional : int;  (** gadgets at unintended decode offsets *)
  r_infos : gadget_info list;
}

val analyze :
  ?samples:int ->
  ?cfg:Hipstr_psr.Config.t ->
  seed:int ->
  name:string ->
  Hipstr_compiler.Fatbin.t ->
  Hipstr_isa.Desc.which ->
  report
(** Loads the binary into a scratch memory, mines, classifies.
    [samples] relocation-map draws per function (default 12). *)

val obfuscated_fraction : report -> float
val viable_fraction : report -> float
