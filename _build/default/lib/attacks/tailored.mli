(** Tailored attacks that try to bypass execution diversification
    (Figure 8 and the end of Section 7.1).

    An attacker aware of the diversification interleaves gadgets from
    both variants/ISAs, or uses only gadgets whose behaviour is the
    same in both. For a diversification probability [p], the expected
    usable surface is, per gadget, [(1 - p) + p * u]: the coin either
    leaves the expected variant running, or the gadget must be
    diversification-invariant (probability [u]).

    Invariance differs sharply by technique — the paper's key point:
    - same-ISA (Isomeron): the twin is a register permutation, so a
      gadget with [k] register operands is invariant with probability
      ~[(1/8)^k], and register-free gadgets always are: hundreds
      survive at p=1;
    - cross-ISA (HIPStR): a CISC byte sequence means nothing on the
      RISC core, and the migration's stack transformation relocates
      the payload; only effect-free (nop-like) gadgets are invariant:
      almost nothing survives at p=1. *)

type technique = Isomeron_only | Psr_only | Psr_isomeron | Hipstr

type point = { p_prob : float; p_surface : float }

type curve = { t_label : string; t_points : point list }

val invariant_same_isa : Hipstr_galileo.Galileo.effect -> float
val invariant_cross_isa : Hipstr_galileo.Galileo.effect -> float

val surface :
  technique ->
  base_gadgets:Hipstr_galileo.Galileo.effect list ->
  psr_gadgets:Hipstr_galileo.Galileo.effect list ->
  prob:float ->
  float
(** Expected usable gadget count. [base_gadgets] is the full in-cache
    set (techniques without PSR), [psr_gadgets] the PSR-surviving
    subset. *)

val curve :
  technique ->
  base_gadgets:Hipstr_galileo.Galileo.effect list ->
  psr_gadgets:Hipstr_galileo.Galileo.effect list ->
  probs:float list ->
  curve
