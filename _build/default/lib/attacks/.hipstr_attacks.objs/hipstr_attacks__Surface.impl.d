lib/attacks/surface.ml: Desc Hashtbl Hipstr_cisc Hipstr_compiler Hipstr_galileo Hipstr_isa Hipstr_machine Hipstr_psr Hipstr_risc Hipstr_util List
