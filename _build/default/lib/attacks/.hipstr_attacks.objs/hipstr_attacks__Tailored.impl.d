lib/attacks/tailored.ml: Hipstr_galileo Hipstr_isomeron List
