lib/attacks/rop.ml: Desc Hashtbl Hipstr Hipstr_cisc Hipstr_compiler Hipstr_galileo Hipstr_isa Hipstr_machine Hipstr_risc Int List Map Minstr
