lib/attacks/brute_force.mli: Hipstr_psr Surface
