lib/attacks/brute_force.ml: Hipstr_galileo Hipstr_psr Hipstr_util List Surface
