lib/attacks/entropy.mli: Hipstr_psr
