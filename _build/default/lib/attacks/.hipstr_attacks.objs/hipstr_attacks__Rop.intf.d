lib/attacks/rop.mli: Hipstr Hipstr_compiler Hipstr_isa Hipstr_machine
