lib/attacks/jitrop.ml: Desc Hashtbl Hipstr Hipstr_cisc Hipstr_compiler Hipstr_galileo Hipstr_isa Hipstr_machine Hipstr_migration Hipstr_psr Hipstr_workloads List
