lib/attacks/tailored.mli: Hipstr_galileo
