lib/attacks/surface.mli: Hipstr_compiler Hipstr_galileo Hipstr_isa Hipstr_psr
