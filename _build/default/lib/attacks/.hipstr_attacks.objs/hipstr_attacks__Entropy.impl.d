lib/attacks/entropy.ml: Hipstr_psr List
