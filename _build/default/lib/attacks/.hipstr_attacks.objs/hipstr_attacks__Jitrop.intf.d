lib/attacks/jitrop.mli: Hipstr_workloads
