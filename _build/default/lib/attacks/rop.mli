(** Concrete ROP exploitation of the httpd victim (Figure 1 / Section 2).

    Builds a real execve shellcode chain against a loaded binary and
    delivers it through httpd's unchecked request-copy loop:

    - find the gadgets that pop each of the four syscall registers
      (ax=number, bx/cx/dx=arguments) from attacker-controlled stack
      data, avoiding clobbers of already-established registers;
    - lay out the overflow payload: filler up to the saved return
      address (the attacker has the frame layout from the symbol
      table — the full-disclosure threat model), then gadget
      addresses interleaved with their stack data;
    - terminate the chain by returning into a syscall instruction
      with ax = 11 (execve).

    On the native machine the chain spawns the shell. Under PSR the
    same bytes land in a randomized frame: the overflow misses the
    relocated return slot with overwhelming probability, and even a
    lucky hit executes gadgets whose operands PSR has rewritten. *)

type step = {
  s_reg : int;
  s_value : int;
  s_gadget : int;  (** gadget address *)
  s_frame_words : int;  (** stack words this gadget consumes after entry *)
}

type chain = {
  c_steps : step list;
  c_syscall_addr : int;  (** the final return target *)
  c_payload : int list;  (** words to write from the buffer start *)
  c_ret_index : int;  (** payload word index that lands on the saved return address *)
}

val target_values : (int * int) list
(** register -> value for the execve(11) call: ax=11, bx=path pointer,
    cx and dx argument markers. *)

val find_syscall_addresses : Hipstr_machine.Mem.t -> Hipstr_compiler.Fatbin.t -> Hipstr_isa.Desc.which -> int list

val build_chain :
  Hipstr_machine.Mem.t ->
  Hipstr_compiler.Fatbin.t ->
  Hipstr_isa.Desc.which ->
  victim_func:string ->
  chain option
(** Mine, select gadgets, and lay out the payload against the given
    victim function's frame ([None] if the binary's gadget population
    cannot express the chain). *)

type attack_outcome = Shell | Crashed of string | Survived

val deliver : Hipstr.System.t -> chain -> fuel:int -> attack_outcome
(** Poke the payload into [net_input]/[net_len] and run the system:
    [Shell] means the exploit won, [Crashed] that it faulted the
    process, [Survived] that the program finished normally (the
    defense silently absorbed the overflow). *)
