type curve = { label : string; values : (int * float) list }

let cap = 1024.

let capped v = if v > cap then cap else v

let curve label per_step max_chain =
  { label; values = List.init max_chain (fun i -> (i + 1, capped (per_step ** float_of_int (i + 1)))) }

let isomeron ~max_chain = curve "Isomeron" 2. max_chain

let het_isa ~max_chain = curve "Heterogeneous-ISA migration" 2. max_chain

(* Per-gadget chaining entropy under PSR: the relocated return slot
   ranges over the pad. *)
let psr_step (cfg : Hipstr_psr.Config.t) = float_of_int (cfg.pad_bytes / 4)

let psr_isomeron ~cfg ~max_chain = curve "PSR + Isomeron" (2. *. psr_step cfg) max_chain

let hipstr ~cfg ~max_chain = curve "HIPStR" (2. *. psr_step cfg *. 1.5) max_chain

let all ~cfg ~max_chain =
  [ isomeron ~max_chain; het_isa ~max_chain; psr_isomeron ~cfg ~max_chain; hipstr ~cfg ~max_chain ]
