(** The brute-force simulation of Algorithm 1 and Table 2.

    Models the Blind-ROP-style attacker of Section 4: the victim
    re-spawns on a crash, the attacker sprays one register's value
    across an entire frame and brute-forces (a) which gadget to use,
    (b) the position of the gadget's remaining randomized parameters,
    and (c) the relocated return-address slot used to chain the next
    gadget. The goal is the four-gadget execve shellcode: populate
    ax, bx, cx and dx with attacker-chosen values.

    Gadget selection follows Algorithm 1: for each register, among the
    viable gadgets that populate it without clobbering the registers
    already established, pick the one whose (randomized) return-slot
    position sorts first; the search accounts for register and stack
    clobbering.

    The expected attempt count multiplies, per chained gadget, one
    factor of [pad/4] for every randomizable parameter except the
    sprayed data slot. With a register bias, register parameters are
    register-resident with the bias probability and then range over
    the register file instead of the pad. The paper's conservative
    assumption is kept: a failed attempt does *not* re-randomize. *)

type chain_step = {
  st_reg : int;
  st_gadget_addr : int;
  st_params : int;
  st_clobbers : int list;
}

type result = {
  bf_name : string;
  bf_viable : int;  (** gadgets entering the search *)
  bf_params_avg : float;  (** avg randomizable parameters (Table 2 col 1) *)
  bf_entropy_bits : float;  (** avg params x bits/param (Table 2 col 2) *)
  bf_attempts_nobias : float;
  bf_attempts_bias : float;
  bf_chain : chain_step list option;
      (** the four-gadget chain Algorithm 1 found, if one exists *)
}

val simulate :
  ?cfg:Hipstr_psr.Config.t ->
  name:string ->
  Surface.report ->
  result

val infeasible_threshold : float
(** Attempts beyond this count as computationally infeasible even for
    exascale attackers (the paper's 1 ns/attempt for centuries). *)

val is_infeasible : result -> bool
