lib/psr/config.mli:
