lib/psr/code_cache.mli:
