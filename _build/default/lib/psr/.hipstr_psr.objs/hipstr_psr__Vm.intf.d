lib/psr/vm.mli: Code_cache Config Hipstr_compiler Hipstr_isa Hipstr_machine Reloc_map
