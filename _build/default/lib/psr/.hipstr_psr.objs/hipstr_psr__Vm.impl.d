lib/psr/vm.ml: Array Code_cache Config Desc Hashtbl Hipstr_cisc Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_risc Hipstr_util List Minstr Printf Reloc_map Translator
