lib/psr/config.ml:
