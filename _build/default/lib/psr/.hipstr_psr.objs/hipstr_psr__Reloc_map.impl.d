lib/psr/reloc_map.ml: Array Config Desc Hashtbl Hipstr_compiler Hipstr_isa Hipstr_util List
