lib/psr/translator.ml: Array Buffer Config Desc Hashtbl Hipstr_cisc Hipstr_compiler Hipstr_isa Hipstr_risc List Minstr Reloc_map String
