lib/psr/code_cache.ml: Hashtbl
