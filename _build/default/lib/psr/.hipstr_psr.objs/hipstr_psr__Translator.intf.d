lib/psr/translator.mli: Config Hipstr_compiler Hipstr_isa Reloc_map
