lib/psr/reloc_map.mli: Config Hipstr_compiler Hipstr_isa Hipstr_util
