type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev_map (pad_to ncols) t.rows in
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  account t.headers;
  List.iter account rows;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
    print_newline ();
    print_endline s;
    print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)
