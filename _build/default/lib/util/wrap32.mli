(** 32-bit two's-complement arithmetic carried in native [int]s.

    The simulated machines are 32-bit. Register values are stored as
    OCaml [int]s constrained to the signed 32-bit range
    [-2^31, 2^31). Every arithmetic helper here wraps its result back
    into that range, and the flag helpers compute the x86/ARM-style
    condition codes for the operation. *)

val wrap : int -> int
(** Reduce any int to the signed 32-bit range. *)

val unsigned : int -> int
(** [unsigned v] is the value of the 32-bit pattern of [v] read as an
    unsigned integer, i.e. in [0, 2^32). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

val sdiv : int -> int -> int
(** Signed division truncating toward zero. Division by zero yields 0
    (the simulated machines do not fault on it). *)

val srem : int -> int -> int

val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int

val shl : int -> int -> int
(** Shift count is masked to 5 bits, as on real 32-bit hardware. *)

val shr : int -> int -> int
(** Logical (unsigned) right shift, count masked to 5 bits. *)

val sar : int -> int -> int
(** Arithmetic right shift, count masked to 5 bits. *)

val carry_add : int -> int -> bool
(** Unsigned carry-out of 32-bit [a + b]. *)

val borrow_sub : int -> int -> bool
(** Unsigned borrow of 32-bit [a - b] (the x86 CF after SUB/CMP). *)

val overflow_add : int -> int -> bool
(** Signed overflow of 32-bit [a + b]. *)

val overflow_sub : int -> int -> bool
(** Signed overflow of 32-bit [a - b]. *)

val byte : int -> int -> int
(** [byte v i] is byte [i] (0 = least significant) of the 32-bit
    pattern of [v]. *)

val of_bytes : int -> int -> int -> int -> int
(** [of_bytes b0 b1 b2 b3] assembles a signed 32-bit value,
    little-endian ([b0] least significant). *)
