lib/util/wrap32.ml:
