lib/util/table.mli:
