lib/util/wrap32.mli:
