lib/util/stats.mli:
