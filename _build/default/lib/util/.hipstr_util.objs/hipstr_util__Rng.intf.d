lib/util/rng.mli:
