(** Plain-text table rendering for experiment output.

    Every experiment prints its paper table/figure as an aligned text
    table so the bench harness output can be diffed against the
    paper's reported rows. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val render : t -> string
(** Render with a header rule and right-padded columns. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the optional title then the table to
    stdout. *)
