(** Generic machine instructions.

    Both simulated ISAs — the variable-length CISC ("x86-like") and the
    fixed-width RISC ("ARM-like") — decode to this one AST, and the
    interpreter executes it with only a small per-ISA descriptor
    ({!Desc.t}) to vary call/return conventions. What actually differs
    between the ISAs, and what the security evaluation observes, is the
    byte-level *encoding* implemented in [Hipstr_cisc] and
    [Hipstr_risc].

    Control-transfer targets are stored as absolute addresses in the
    decoded form; encoders turn them into PC-relative displacements.

    The three pseudo-instructions [Trap], [Callrat] and [Retrat] exist
    only in translated code emitted by the PSR virtual machine:
    [Trap] is an exit stub back to the translator, and
    [Callrat]/[Retrat] model the paper's modified call/return
    macro-ops that maintain and consult the hardware Return Address
    Table. *)

type reg = int
(** Register index; the valid range depends on the ISA. *)

type cond = Eq | Ne | Lt | Ge | Gt | Le | Ult | Uge

type binop = Add | Sub | Mul | Divs | Rems | And | Or | Xor | Shl | Shr | Sar

type operand =
  | Reg of reg
  | Imm of int  (** signed 32-bit immediate *)
  | Mem of { base : reg; disp : int }  (** address [base] + [disp] *)

type t =
  | Mov of operand * operand  (** destination, source *)
  | Lea of reg * reg * int  (** [Lea (d, b, k)]: d := b + k *)
  | Binop of binop * operand * operand
      (** two-operand form: destination is also first source *)
  | Cmp of operand * operand  (** sets flags from first - second *)
  | Push of operand
  | Pop of operand
  | Jmp of int
  | Jcc of cond * int
  | Jmpr of operand  (** indirect jump *)
  | Call of int
  | Callr of operand  (** indirect call *)
  | Ret  (** CISC-style: pops the return address *)
  | Retr of reg  (** RISC-style: returns via the link register *)
  | Syscall
  | Nop
  | Trap of int  (** VM exit stub carrying the source address *)
  | Callrat of { target : int; src_ret : int }
      (** translated call: records [src_ret -> fallthrough] in the RAT,
          performs the ISA's call-state side effect with [src_ret], and
          jumps to the (translated) [target] *)
  | Retrat of operand
      (** translated return: reads a *source* return address from the
          operand and jumps to its RAT translation; a RAT miss traps *)

val all_conds : cond array
val all_binops : binop array

val negate_cond : cond -> cond

val string_of_cond : cond -> string
val string_of_binop : binop -> string

val pp : reg_name:(reg -> string) -> Format.formatter -> t -> unit
(** Disassembler-style rendering, parameterized by the ISA's register
    names. *)

val to_string : reg_name:(reg -> string) -> t -> string

val is_control : t -> bool
(** True for instructions that end a basic block (all jumps, calls,
    returns, traps). [Syscall] is not control: execution falls
    through. *)

val is_return : t -> bool
(** True for [Ret], [Retr] and [Retrat] — the gadget terminators. *)

val operands : t -> operand list
(** Source-level operands of the instruction, for analyses. *)

val writes_reg : t -> reg list
(** Registers architecturally written (excluding SP adjustments by
    push/pop and the PC). *)

val reads_reg : sp:reg -> t -> reg list
(** Registers read, including memory-operand bases and the stack
    pointer for push/pop/ret. *)
