type reg = int

type cond = Eq | Ne | Lt | Ge | Gt | Le | Ult | Uge

type binop = Add | Sub | Mul | Divs | Rems | And | Or | Xor | Shl | Shr | Sar

type operand = Reg of reg | Imm of int | Mem of { base : reg; disp : int }

type t =
  | Mov of operand * operand
  | Lea of reg * reg * int
  | Binop of binop * operand * operand
  | Cmp of operand * operand
  | Push of operand
  | Pop of operand
  | Jmp of int
  | Jcc of cond * int
  | Jmpr of operand
  | Call of int
  | Callr of operand
  | Ret
  | Retr of reg
  | Syscall
  | Nop
  | Trap of int
  | Callrat of { target : int; src_ret : int }
  | Retrat of operand

let all_conds = [| Eq; Ne; Lt; Ge; Gt; Le; Ult; Uge |]

let all_binops = [| Add; Sub; Mul; Divs; Rems; And; Or; Xor; Shl; Shr; Sar |]

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Le -> Gt
  | Ult -> Uge
  | Uge -> Ult

let string_of_cond = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"
  | Ult -> "ult"
  | Uge -> "uge"

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Divs -> "div"
  | Rems -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"

let pp_operand reg_name ppf = function
  | Reg r -> Format.pp_print_string ppf (reg_name r)
  | Imm k -> Format.fprintf ppf "$%d" k
  | Mem { base; disp } ->
    if disp = 0 then Format.fprintf ppf "[%s]" (reg_name base)
    else Format.fprintf ppf "[%s%+d]" (reg_name base) disp

let pp ~reg_name ppf t =
  let op = pp_operand reg_name in
  match t with
  | Mov (d, s) -> Format.fprintf ppf "mov %a, %a" op d op s
  | Lea (d, b, k) -> Format.fprintf ppf "lea %s, [%s%+d]" (reg_name d) (reg_name b) k
  | Binop (b, d, s) -> Format.fprintf ppf "%s %a, %a" (string_of_binop b) op d op s
  | Cmp (a, b) -> Format.fprintf ppf "cmp %a, %a" op a op b
  | Push s -> Format.fprintf ppf "push %a" op s
  | Pop d -> Format.fprintf ppf "pop %a" op d
  | Jmp a -> Format.fprintf ppf "jmp 0x%x" a
  | Jcc (c, a) -> Format.fprintf ppf "j%s 0x%x" (string_of_cond c) a
  | Jmpr s -> Format.fprintf ppf "jmp *%a" op s
  | Call a -> Format.fprintf ppf "call 0x%x" a
  | Callr s -> Format.fprintf ppf "call *%a" op s
  | Ret -> Format.pp_print_string ppf "ret"
  | Retr r -> Format.fprintf ppf "ret %s" (reg_name r)
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Nop -> Format.pp_print_string ppf "nop"
  | Trap a -> Format.fprintf ppf "trap 0x%x" a
  | Callrat { target; src_ret } -> Format.fprintf ppf "call.rat 0x%x (src 0x%x)" target src_ret
  | Retrat s -> Format.fprintf ppf "ret.rat %a" op s

let to_string ~reg_name t = Format.asprintf "%a" (pp ~reg_name) t

let is_control = function
  | Jmp _ | Jcc _ | Jmpr _ | Call _ | Callr _ | Ret | Retr _ | Trap _ | Callrat _ | Retrat _ ->
    true
  | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Syscall | Nop -> false

let is_return = function
  | Ret | Retr _ | Retrat _ -> true
  | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Jmp _ | Jcc _ | Jmpr _ | Call _ | Callr _
  | Syscall | Nop | Trap _ | Callrat _ ->
    false

let operands = function
  | Mov (d, s) -> [ d; s ]
  | Lea (d, b, k) -> [ Reg d; Mem { base = b; disp = k } ]
  | Binop (_, d, s) -> [ d; s ]
  | Cmp (a, b) -> [ a; b ]
  | Push s -> [ s ]
  | Pop d -> [ d ]
  | Jmpr s | Callr s | Retrat s -> [ s ]
  | Retr r -> [ Reg r ]
  | Jmp _ | Jcc _ | Call _ | Ret | Syscall | Nop | Trap _ | Callrat _ -> []

let regs_of_operand = function
  | Reg r -> [ r ]
  | Imm _ -> []
  | Mem { base; _ } -> [ base ]

let writes_reg = function
  | Mov (Reg d, _) | Lea (d, _, _) | Binop (_, Reg d, _) | Pop (Reg d) -> [ d ]
  | Mov _ | Binop _ | Pop _ | Cmp _ | Push _ | Jmp _ | Jcc _ | Jmpr _ | Call _ | Callr _ | Ret
  | Retr _ | Syscall | Nop | Trap _ | Callrat _ | Retrat _ ->
    []

let reads_reg ~sp = function
  | Mov (d, s) ->
    (match d with Mem { base; _ } -> [ base ] | Reg _ | Imm _ -> []) @ regs_of_operand s
  | Lea (_, b, _) -> [ b ]
  | Binop (_, d, s) -> regs_of_operand d @ regs_of_operand s
  | Cmp (a, b) -> regs_of_operand a @ regs_of_operand b
  | Push s -> sp :: regs_of_operand s
  | Pop d -> (sp :: (match d with Mem { base; _ } -> [ base ] | Reg _ | Imm _ -> []))
  | Jmpr s | Callr s | Retrat s -> regs_of_operand s
  | Retr r -> [ r ]
  | Ret -> [ sp ]
  | Call _ -> [ sp ]
  | Callrat _ -> [ sp ]
  | Jmp _ | Jcc _ | Syscall | Nop | Trap _ -> []
