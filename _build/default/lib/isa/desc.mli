(** Per-ISA descriptors.

    A descriptor captures everything the interpreter, the compiler and
    the PSR virtual machine need to know about an ISA besides its byte
    encoding: register-file shape, stack/link registers, calling
    convention, and alignment. The two concrete instances live in
    [Hipstr_cisc.Isa.desc] and [Hipstr_risc.Isa.desc]. *)

type which = Cisc | Risc

type t = {
  which : which;
  name : string;
  nregs : int;
  sp : Minstr.reg;  (** stack pointer register *)
  lr : Minstr.reg option;  (** link register, if calls write one *)
  call_pushes_ret : bool;
      (** true: [Call] pushes the return address (x86 style);
          false: [Call] writes it to [lr] (ARM style) *)
  scratch : Minstr.reg;
      (** register reserved by the compiler and the PSR translator for
          lowering sequences; never allocated to program values *)
  scratch2 : Minstr.reg;  (** second reserved scratch *)
  arg_regs : Minstr.reg list;
      (** registers carrying the first arguments; remaining arguments
          go to the caller's outgoing-argument stack slots. Both ISAs
          here pass all arguments in caller frame slots (the symmetric
          multi-ISA frame), so this is empty. *)
  ret_reg : Minstr.reg;  (** function result register *)
  callee_saved : Minstr.reg list;
  caller_saved : Minstr.reg list;
      (** allocatable registers a call may clobber *)
  allocatable : Minstr.reg list;
      (** registers the register allocator may assign to values *)
  align : int;  (** instruction alignment: 1 for CISC, 4 for RISC *)
  freq_ghz : float;  (** clock frequency, from Table 1 *)
}

val reg_name : t -> Minstr.reg -> string

val other : which -> which
