type which = Cisc | Risc

type t = {
  which : which;
  name : string;
  nregs : int;
  sp : Minstr.reg;
  lr : Minstr.reg option;
  call_pushes_ret : bool;
  scratch : Minstr.reg;
  scratch2 : Minstr.reg;
  arg_regs : Minstr.reg list;
  ret_reg : Minstr.reg;
  callee_saved : Minstr.reg list;
  caller_saved : Minstr.reg list;
  allocatable : Minstr.reg list;
  align : int;
  freq_ghz : float;
}

let cisc_names = [| "ax"; "bx"; "cx"; "dx"; "si"; "di"; "bp"; "sp" |]

let reg_name t r =
  match t.which with
  | Cisc -> if r >= 0 && r < 8 then cisc_names.(r) else Printf.sprintf "r?%d" r
  | Risc ->
    if r = t.sp then "sp"
    else if Some r = t.lr then "lr"
    else if r >= 0 && r < t.nregs then Printf.sprintf "r%d" r
    else Printf.sprintf "r?%d" r

let other = function Cisc -> Risc | Risc -> Cisc
