lib/isa/minstr.mli: Format
