lib/isa/desc.mli: Minstr
