lib/isa/minstr.ml: Format
