lib/isa/desc.ml: Array Minstr Printf
