lib/risc/isa.mli: Hipstr_isa
