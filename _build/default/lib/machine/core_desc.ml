type t = {
  name : string;
  freq_ghz : float;
  fetch_width : int;
  issue_width : int;
  rob_size : int;
  lq_size : int;
  sq_size : int;
  int_alus : int;
  throughput : float;
  mispredict_penalty : int;
  icache_size_kb : int;
  dcache_size_kb : int;
  cache_assoc : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  div_latency : int;
  mul_latency : int;
}

let arm =
  {
    name = "ARM core (Cortex A-9 class)";
    freq_ghz = 2.0;
    fetch_width = 2;
    issue_width = 4;
    rob_size = 20;
    lq_size = 16;
    sq_size = 16;
    int_alus = 2;
    throughput = 1.3;
    mispredict_penalty = 8;
    icache_size_kb = 32;
    dcache_size_kb = 32;
    cache_assoc = 2;
    icache_miss_penalty = 20;
    dcache_miss_penalty = 20;
    div_latency = 20;
    mul_latency = 4;
  }

let x86 =
  {
    name = "x86 core (Xeon class)";
    freq_ghz = 3.3;
    fetch_width = 4;
    issue_width = 4;
    rob_size = 128;
    lq_size = 48;
    sq_size = 96;
    int_alus = 6;
    throughput = 2.2;
    mispredict_penalty = 14;
    icache_size_kb = 32;
    dcache_size_kb = 32;
    cache_assoc = 2;
    icache_miss_penalty = 30;
    dcache_miss_penalty = 30;
    div_latency = 22;
    mul_latency = 3;
  }

let for_isa = function Hipstr_isa.Desc.Cisc -> x86 | Risc -> arm

let describe t =
  Printf.sprintf
    "%s: %.1f GHz, fetch %d, issue %d, ROB %d, LQ/SQ %d/%d, I$/D$ %d/%d KB %d-way"
    t.name t.freq_ghz t.fetch_width t.issue_width t.rob_size t.lq_size t.sq_size t.icache_size_kb
    t.dcache_size_kb t.cache_assoc
