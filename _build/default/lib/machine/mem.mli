(** Simulated flat byte-addressable memory.

    Accesses outside the configured size raise {!Fault}, which the
    execution engine converts into a simulated machine fault — this is
    how wild gadget chains crash, so the brute-force experiments
    depend on it. *)

exception Fault of int
(** Raised with the offending address. *)

type t

val create : int -> t
(** [create size] is zero-initialized memory of [size] bytes. *)

val size : t -> int

val read8 : t -> int -> int
(** Unsigned byte. *)

val write8 : t -> int -> int -> unit

val read32 : t -> int -> int
(** Signed 32-bit little-endian load. *)

val write32 : t -> int -> int -> unit

val blit_string : t -> int -> string -> unit
(** Copy a string into memory at an address. *)

val read_string : t -> int -> int -> string

val read_cstring : t -> int -> string
(** Read a NUL-terminated string (capped at 4096 bytes). *)
