type outcome = Continue | Halt_exit of int | Halt_shell

type t = {
  mutable brk : int;
  mutable output : int list;
  mutable shell : (int * int * int) option;
  mutable exit_code : int option;
}

let sys_exit = 1
let sys_brk = 3
let sys_print_int = 4
let sys_execve = 11

let create () = { brk = Layout.heap_base; output = []; shell = None; exit_code = None }

let output t = List.rev t.output

let handle t ~number ~args:(a1, a2, a3) =
  if number = sys_exit then begin
    t.exit_code <- Some a1;
    (0, Halt_exit a1)
  end
  else if number = sys_brk then begin
    let old = t.brk in
    let requested = max 0 a1 in
    if old + requested > Layout.heap_limit then (-1, Continue)
    else begin
      t.brk <- old + requested;
      (old, Continue)
    end
  end
  else if number = sys_print_int then begin
    t.output <- a1 :: t.output;
    (0, Continue)
  end
  else if number = sys_execve then begin
    t.shell <- Some (a1, a2, a3);
    (0, Halt_shell)
  end
  else (-1, Continue)
