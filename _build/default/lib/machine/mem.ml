module W32 = Hipstr_util.Wrap32

exception Fault of int

type t = { bytes : Bytes.t; size : int }

let create size = { bytes = Bytes.make size '\000'; size }

let size t = t.size

let check t a = if a < 0 || a >= t.size then raise (Fault a)

let read8 t a =
  check t a;
  Char.code (Bytes.unsafe_get t.bytes a)

let write8 t a v =
  check t a;
  Bytes.unsafe_set t.bytes a (Char.unsafe_chr (v land 0xFF))

let read32 t a =
  check t a;
  check t (a + 3);
  W32.of_bytes (read8 t a) (read8 t (a + 1)) (read8 t (a + 2)) (read8 t (a + 3))

let write32 t a v =
  check t a;
  check t (a + 3);
  let v = W32.unsigned v in
  write8 t a (v land 0xFF);
  write8 t (a + 1) ((v lsr 8) land 0xFF);
  write8 t (a + 2) ((v lsr 16) land 0xFF);
  write8 t (a + 3) ((v lsr 24) land 0xFF)

let blit_string t a s =
  check t a;
  check t (a + String.length s - 1);
  Bytes.blit_string s 0 t.bytes a (String.length s)

let read_string t a n =
  check t a;
  check t (a + n - 1);
  Bytes.sub_string t.bytes a n

let read_cstring t a =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= 4096 then Buffer.contents buf
    else
      let c = read8 t (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0
