(** Core timing descriptors, from Table 1 of the paper.

    The simulator is cycle-approximate: each instruction class has a
    base latency which is divided by the core's sustained superscalar
    throughput factor (derived from fetch/issue width and ROB size),
    and cache-miss / branch-misprediction penalties are added on top.
    This preserves the relative performance effects the evaluation
    measures (PSR-inserted instructions, I-cache locality of the code
    cache, sparse-stack D-cache behaviour, RAT penalties) without
    modelling a full out-of-order pipeline. *)

type t = {
  name : string;
  freq_ghz : float;
  fetch_width : int;
  issue_width : int;
  rob_size : int;
  lq_size : int;
  sq_size : int;
  int_alus : int;
  throughput : float;  (** sustained instructions per cycle *)
  mispredict_penalty : int;
  icache_size_kb : int;
  dcache_size_kb : int;
  cache_assoc : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  div_latency : int;
  mul_latency : int;
}

val arm : t
(** Cortex A-9-like little core: 2 GHz, 2-wide fetch, 20-entry ROB. *)

val x86 : t
(** Xeon-like big core: 3.3 GHz, 4-wide fetch, 128-entry ROB. *)

val for_isa : Hipstr_isa.Desc.which -> t

val describe : t -> string
(** Multi-line rendering of the Table 1 row. *)
