type t = {
  line_bits : int;
  nsets : int;
  assoc : int;
  tags : int array; (* nsets * assoc; -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  miss_penalty : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2i n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ?(line = 64) ~size_kb ~assoc ~miss_penalty () =
  let nlines = max assoc (size_kb * 1024 / line) in
  let nsets = max 1 (nlines / assoc) in
  {
    line_bits = log2i line;
    nsets;
    assoc;
    tags = Array.make (nsets * assoc) (-1);
    stamps = Array.make (nsets * assoc) 0;
    miss_penalty;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  let set = line mod t.nsets in
  let base = set * t.assoc in
  let rec find i = if i >= t.assoc then None else if t.tags.(base + i) = line then Some i else find (i + 1) in
  match find 0 with
  | Some i ->
    t.stamps.(base + i) <- t.clock;
    t.hits <- t.hits + 1;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Evict the least recently used way. *)
    let victim = ref 0 in
    for i = 1 to t.assoc - 1 do
      if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- line;
    t.stamps.(base + !victim) <- t.clock;
    false

let miss_penalty t = t.miss_penalty
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)
