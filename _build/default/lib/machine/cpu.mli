(** Architectural CPU state and performance counters. *)

type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable vf : bool }

type perf = {
  mutable cycles : float;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable returns : int;
  mutable indirects : int;
  mutable syscalls : int;
}

type t = {
  mutable pc : int;
  regs : int array;  (** 16 slots; the active ISA uses a prefix *)
  flags : flags;
  perf : perf;
}

val create : unit -> t

val reset_perf : t -> unit

val snapshot_perf : t -> perf
(** A copy of the current counters. *)

val copy_regs : t -> int array
