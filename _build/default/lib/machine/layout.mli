(** The simulated process address space.

    One flat 32 MB space shared by both cores (the fat-binary process
    model: two code sections, a common ISA-agnostic data section, one
    stack and heap, and one code-cache region per ISA's PSR virtual
    machine). *)

val mem_size : int

val cisc_code_base : int
val risc_code_base : int
val code_region_size : int

val data_base : int
val data_size : int

val heap_base : int
val heap_limit : int

val stack_top : int
(** Initial stack pointer (stack grows down). *)

val stack_limit : int
(** Lowest valid stack address. *)

val cisc_cache_base : int
val risc_cache_base : int
val cache_region_size : int
(** Maximum code-cache region per ISA; the PSR VM may configure a
    smaller effective cache. *)

val exit_sentinel : int
(** Pseudo return address pushed below [main]; control reaching it
    means the program returned from [main]. Lies outside every mapped
    region. *)

val code_base : Hipstr_isa.Desc.which -> int
val cache_base : Hipstr_isa.Desc.which -> int

val in_cache_region : int -> bool
(** Whether an address falls in either ISA's code-cache region (the
    software-fault-isolation check the PSR VM applies to indirect
    branch targets). *)
