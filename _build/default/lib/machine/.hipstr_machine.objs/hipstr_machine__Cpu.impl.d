lib/machine/cpu.ml: Array
