lib/machine/mem.mli:
