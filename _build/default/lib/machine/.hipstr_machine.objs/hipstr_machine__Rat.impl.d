lib/machine/rat.ml: Hashtbl
