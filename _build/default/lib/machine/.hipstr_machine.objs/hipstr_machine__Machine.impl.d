lib/machine/machine.ml: Array Bpred Cache Core_desc Cpu Desc Exec Hipstr_cisc Hipstr_isa Hipstr_risc Layout Mem Rat Sys
