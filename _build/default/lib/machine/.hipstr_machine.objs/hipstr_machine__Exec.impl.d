lib/machine/exec.ml: Array Bpred Cache Core_desc Cpu Desc Hipstr_cisc Hipstr_isa Hipstr_risc Hipstr_util Layout Mem Minstr Printf Rat Sys
