lib/machine/sys.mli:
