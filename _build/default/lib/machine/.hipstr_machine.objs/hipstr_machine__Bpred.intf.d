lib/machine/bpred.mli:
