lib/machine/layout.mli: Hipstr_isa
