lib/machine/exec.mli: Bpred Cache Core_desc Cpu Hipstr_isa Mem Rat Sys
