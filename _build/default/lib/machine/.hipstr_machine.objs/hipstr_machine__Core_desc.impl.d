lib/machine/core_desc.ml: Hipstr_isa Printf
