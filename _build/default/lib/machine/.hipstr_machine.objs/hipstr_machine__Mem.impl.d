lib/machine/mem.ml: Buffer Bytes Char Hipstr_util String
