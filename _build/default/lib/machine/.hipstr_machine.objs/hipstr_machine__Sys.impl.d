lib/machine/sys.ml: Layout List
