lib/machine/layout.ml: Hipstr_isa
