lib/machine/rat.mli:
