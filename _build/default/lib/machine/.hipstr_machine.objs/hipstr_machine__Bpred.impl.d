lib/machine/bpred.ml: Array
