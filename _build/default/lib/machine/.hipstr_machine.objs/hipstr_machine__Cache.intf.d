lib/machine/cache.mli:
