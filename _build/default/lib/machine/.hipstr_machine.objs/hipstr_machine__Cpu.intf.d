lib/machine/cpu.mli:
