lib/machine/machine.mli: Cpu Exec Hipstr_isa Mem Rat Sys
