lib/machine/core_desc.mli: Hipstr_isa
