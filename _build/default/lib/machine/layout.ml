let mem_size = 0x0200_0000 (* 32 MB *)

let cisc_code_base = 0x0001_0000
let risc_code_base = 0x0011_0000
let code_region_size = 0x0010_0000 (* 1 MB each *)

let data_base = 0x0030_0000
let data_size = 0x0010_0000

let heap_base = 0x0040_0000
let heap_limit = 0x00C0_0000

let stack_top = 0x00FF_FFF0
let stack_limit = 0x00C0_0000

let cisc_cache_base = 0x0100_0000
let risc_cache_base = 0x0180_0000
let cache_region_size = 0x0080_0000 (* 8 MB regions; caches configured smaller *)

let exit_sentinel = 0x0000_EEEE

let code_base = function Hipstr_isa.Desc.Cisc -> cisc_code_base | Risc -> risc_code_base
let cache_base = function Hipstr_isa.Desc.Cisc -> cisc_cache_base | Risc -> risc_cache_base

let in_cache_region a =
  (a >= cisc_cache_base && a < cisc_cache_base + cache_region_size)
  || (a >= risc_cache_base && a < risc_cache_base + cache_region_size)
