(** One-call front door: MiniC source to loaded fat binary. *)

exception Error of string

val to_ir : string -> Ir.program
(** Parse, lower and validate. @raise Error with a message naming the
    phase that failed. *)

val to_fatbin : string -> Fatbin.t

val load_program :
  string -> active:Hipstr_isa.Desc.which -> ?rat_capacity:int option -> unit ->
  Fatbin.t * Hipstr_machine.Machine.t
(** Compile, create a machine, load the fat binary, and boot at
    [main] on the requested core. The caller runs it. *)
