lib/compiler/liveness.ml: Array Int Ir List Set
