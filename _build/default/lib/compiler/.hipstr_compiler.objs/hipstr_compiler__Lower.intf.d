lib/compiler/lower.mli: Hipstr_minic Ir
