lib/compiler/frame.ml: Array Ir List
