lib/compiler/compile.mli: Fatbin Hipstr_isa Hipstr_machine Ir
