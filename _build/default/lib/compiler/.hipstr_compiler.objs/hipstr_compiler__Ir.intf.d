lib/compiler/ir.mli: Format Hipstr_isa
