lib/compiler/frame.mli: Ir
