lib/compiler/fatbin.ml: Array Codegen Desc Frame Hashtbl Hipstr_cisc Hipstr_isa Hipstr_machine Hipstr_risc Ir List Liveness Regalloc Seq
