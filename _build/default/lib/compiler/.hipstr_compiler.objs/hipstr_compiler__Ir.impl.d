lib/compiler/ir.ml: Array Format Hashtbl Hipstr_isa List Minstr Printf String
