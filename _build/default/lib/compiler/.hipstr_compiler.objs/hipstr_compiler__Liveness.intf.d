lib/compiler/liveness.mli: Ir
