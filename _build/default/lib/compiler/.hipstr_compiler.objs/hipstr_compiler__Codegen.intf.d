lib/compiler/codegen.mli: Frame Hipstr_isa Ir Liveness Regalloc
