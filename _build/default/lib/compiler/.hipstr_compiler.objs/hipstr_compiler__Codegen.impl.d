lib/compiler/codegen.ml: Array Buffer Desc Frame Hipstr_cisc Hipstr_isa Hipstr_risc Ir List Liveness Minstr Regalloc String
