lib/compiler/regalloc.ml: Array Hipstr_isa Int Ir List Liveness Set
