lib/compiler/lower.ml: Array Hashtbl Hipstr_isa Hipstr_minic Ir List Minstr Option Printf
