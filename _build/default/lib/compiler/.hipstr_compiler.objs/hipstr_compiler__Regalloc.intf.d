lib/compiler/regalloc.mli: Hipstr_isa Ir Liveness
