lib/compiler/compile.ml: Fatbin Hipstr_machine Hipstr_minic Ir Lower
