lib/compiler/fatbin.mli: Frame Hipstr_isa Hipstr_machine Ir
