(** Per-ISA register allocation.

    Every value gets a "home": an allocatable register or a frame
    slot. Homes are function-global (no live-range splitting), which
    keeps the extended symbol table simple — value v is *always* found
    at its home at block boundaries — and gives the PSR translator a
    well-defined object to relocate.

    Calling discipline is caller-save-everything: a register-homed
    value that is live across a call is saved to its shadow frame slot
    before the call and reloaded after (the paper's "randomized
    scatter of callee saves at the function call site" corresponds to
    PSR randomizing exactly these shadow slots). Consequence: while a
    call is in progress, all of the caller's live state is in frame
    slots, which is what makes whole-stack cross-ISA transformation
    possible.

    Values live across a syscall may not be homed in the syscall
    argument registers (r0-r3 / ax,bx,cx,dx), which the syscall
    sequence clobbers. *)

type home = Hreg of int | Hslot

type result = {
  homes : home array;  (** indexed by value id *)
  needs_slot : bool array;
      (** value needs a frame slot: spilled, or register-homed and
          live across a call (shadow slot) *)
}

val allocate : Hipstr_isa.Desc.t -> Ir.func -> Liveness.t -> result
