(** Per-ISA code generation.

    Emits generic machine instructions for one function, using the
    ISA's addressing modes where it has them (the CISC backend uses
    memory operands; the RISC backend goes through its scratch
    registers, load/store style). Control-flow and address immunities
    are left symbolic ({!target}) and resolved at link time; all
    instruction lengths are already final at generation time, so block
    offsets and the extended symbol table's address ranges are exact.

    Direct and indirect calls emit plain [Call]/[Callr]: rewriting
    them into the RAT-maintaining macro-ops is the PSR translator's
    job at run time. *)

type target =
  | Tblock of Ir.label  (** a block of the same function *)
  | Toffset of int  (** byte offset within the same function *)
  | Tfunc of string  (** another function's entry *)
  | Tglobal of string  (** a global's data address *)

type item = { it_ins : Hipstr_isa.Minstr.t; it_target : target option }

type t = {
  cg_items : item array;
  cg_block_off : int array;  (** byte offset of each IR block's code *)
  cg_block_size : int array;
  cg_size : int;
  cg_callsites : (int * int) list;
      (** call-site id -> byte offset of the return point (the
          instruction after the call) *)
}

val gen : Hipstr_isa.Desc.t -> Ir.func -> Frame.t -> Regalloc.result -> Liveness.t -> t

val resolve_item :
  base:int ->
  at:int ->
  block_addr:(Ir.label -> int) ->
  func_entry:(string -> int) ->
  global_addr:(string -> int) ->
  item ->
  Hipstr_isa.Minstr.t
(** Substitute the final address into an item's instruction. [at] is
    unused for the substitution itself but documents the call site;
    [base] resolves [Toffset]. *)

val encode_all :
  Hipstr_isa.Desc.t ->
  base:int ->
  block_addr:(Ir.label -> int) ->
  func_entry:(string -> int) ->
  global_addr:(string -> int) ->
  t ->
  string
(** Final machine code for the function placed at [base]. *)
