module Ast = Hipstr_minic.Ast
open Hipstr_isa

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type binding =
  | Scalar of Ir.value
  | Slot of int  (* address-taken scalar: locals-area byte offset *)
  | Arr of int  (* locals-area byte offset of a local array *)
  | Gscalar of string
  | Garr of string

type binfo = { id : int; mutable rev_instrs : Ir.instr list; mutable term : Ir.term option }

type st = {
  mutable nvals : int;
  mutable blocks : binfo list; (* reverse creation order *)
  mutable cur : binfo;
  mutable nsites : int;
  mutable locals_bytes : int;
  func_names : (string, unit) Hashtbl.t;
  global_kinds : (string, [ `Scalar | `Array ]) Hashtbl.t;
}

let new_value st =
  let v = st.nvals in
  st.nvals <- v + 1;
  v

let new_block st =
  let b = { id = List.length st.blocks; rev_instrs = []; term = None } in
  st.blocks <- b :: st.blocks;
  b

let switch st b = st.cur <- b

let emit st i =
  (* Code after a terminator (e.g. after [return]) lands in a fresh
     unreachable block so the builder state stays consistent. *)
  if st.cur.term <> None then switch st (new_block st);
  st.cur.rev_instrs <- i :: st.cur.rev_instrs

let terminate st t = if st.cur.term = None then st.cur.term <- Some t

let new_site st =
  let s = st.nsites in
  st.nsites <- s + 1;
  s

let alloc_local st bytes =
  let off = st.locals_bytes in
  st.locals_bytes <- off + bytes;
  off

let lookup env name =
  match List.assoc_opt name env with
  | Some b -> b
  | None ->
    if false then assert false;
    fail "undeclared variable %s" name

let binop_of_ast : Ast.binop -> Minstr.binop option = function
  | Add -> Some Add
  | Sub -> Some Sub
  | Mul -> Some Mul
  | Div -> Some Divs
  | Mod -> Some Rems
  | And -> Some And
  | Or -> Some Or
  | Xor -> Some Xor
  | Shl -> Some Shl
  | Shr -> Some Sar (* C >> on int is arithmetic here *)
  | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> None

let cond_of_ast : Ast.binop -> Minstr.cond option = function
  | Eq -> Some Eq
  | Ne -> Some Ne
  | Lt -> Some Lt
  | Le -> Some Le
  | Gt -> Some Gt
  | Ge -> Some Ge
  | Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr | Land | Lor -> None

type loop_ctx = { break_to : binfo; continue_to : binfo }

let rec lower_expr st env (e : Ast.expr) : Ir.rv =
  match e with
  | Num k -> C k
  | Var x -> (
    match lookup env x with
    | Scalar v -> V v
    | Slot off ->
      let a = new_value st in
      emit st (Addr_local (a, off));
      let d = new_value st in
      emit st (Load (d, V a, 0));
      V d
    | Arr off ->
      (* An array used as a value decays to its address. *)
      let a = new_value st in
      emit st (Addr_local (a, off));
      V a
    | Gscalar g ->
      let a = new_value st in
      emit st (Addr_global (a, g));
      let d = new_value st in
      emit st (Load (d, V a, 0));
      V d
    | Garr g ->
      let a = new_value st in
      emit st (Addr_global (a, g));
      V a)
  | Addr_var x ->
    if Hashtbl.mem st.func_names x then begin
      let d = new_value st in
      emit st (Addr_func (d, x));
      V d
    end
    else (
      match lookup env x with
      | Slot off | Arr off ->
        let d = new_value st in
        emit st (Addr_local (d, off));
        V d
      | Gscalar g | Garr g ->
        let d = new_value st in
        emit st (Addr_global (d, g));
        V d
      | Scalar _ -> fail "internal: address-taken scalar %s was not slotted" x)
  | Addr_fun f ->
    let d = new_value st in
    emit st (Addr_func (d, f));
    V d
  | Addr_index (a, i) -> (
    (* &a[i] = base + 4*i, folded when i is constant *)
    let base, off = lower_index_addr st env a i in
    match (base, off) with
    | b, 0 -> b
    | b, k ->
      let d = new_value st in
      emit st (Bin (Add, d, b, C k));
      V d)
  | Bin (op, a, b) -> (
    match binop_of_ast op with
    | Some mop ->
      let ra = lower_expr st env a in
      let rb = lower_expr st env b in
      let d = new_value st in
      emit st (Bin (mop, d, ra, rb));
      V d
    | None -> (
      match cond_of_ast op with
      | Some c ->
        let ra = lower_expr st env a in
        let rb = lower_expr st env b in
        let d = new_value st in
        emit st (Cmpset (c, d, ra, rb));
        V d
      | None ->
        (* Short-circuit && / || materialized through control flow. *)
        let d = new_value st in
        let bt = new_block st in
        let bf = new_block st in
        let join = new_block st in
        lower_cond st env e bt bf;
        switch st bt;
        emit st (Def (d, C 1));
        terminate st (Jmp join.id);
        switch st bf;
        emit st (Def (d, C 0));
        terminate st (Jmp join.id);
        switch st join;
        V d))
  | Un (Neg, a) ->
    let ra = lower_expr st env a in
    let d = new_value st in
    emit st (Bin (Sub, d, C 0, ra));
    V d
  | Un (Bnot, a) ->
    let ra = lower_expr st env a in
    let d = new_value st in
    emit st (Bin (Xor, d, ra, C (-1)));
    V d
  | Un (Not, a) ->
    let ra = lower_expr st env a in
    let d = new_value st in
    emit st (Cmpset (Eq, d, ra, C 0));
    V d
  | Cond (c, a, b) ->
    let d = new_value st in
    let bt = new_block st in
    let bf = new_block st in
    let join = new_block st in
    lower_cond st env c bt bf;
    switch st bt;
    let ra = lower_expr st env a in
    emit st (Def (d, ra));
    terminate st (Jmp join.id);
    switch st bf;
    let rb = lower_expr st env b in
    emit st (Def (d, rb));
    terminate st (Jmp join.id);
    switch st join;
    V d
  | Assign (lv, e) ->
    let rv = lower_expr st env e in
    lower_store st env lv rv;
    rv
  | Call (name, args) -> lower_call st env ~dst:`Value name args
  | Call_ptr (f, args) ->
    let rf = lower_expr st env f in
    let rargs = List.map (lower_expr st env) args in
    let d = new_value st in
    emit st (Calli { dst = Some d; fp = rf; args = rargs; site = new_site st });
    V d
  | Index (a, i) ->
    let addr, off = lower_index_addr st env a i in
    let d = new_value st in
    emit st (Load (d, addr, off));
    V d
  | Deref e ->
    let ra = lower_expr st env e in
    let d = new_value st in
    emit st (Load (d, ra, 0));
    V d

and lower_index_addr st env name idx : Ir.rv * int =
  (* Returns a base rv and a constant byte offset. *)
  let base : Ir.rv =
    match lookup env name with
    | Arr off ->
      let a = new_value st in
      emit st (Addr_local (a, off));
      V a
    | Garr g ->
      let a = new_value st in
      emit st (Addr_global (a, g));
      V a
    | Scalar v -> V v
    | Slot off ->
      let a = new_value st in
      emit st (Addr_local (a, off));
      let d = new_value st in
      emit st (Load (d, V a, 0));
      V d
    | Gscalar g ->
      let a = new_value st in
      emit st (Addr_global (a, g));
      let d = new_value st in
      emit st (Load (d, V a, 0));
      V d
  in
  match idx with
  | Ast.Num k -> (base, 4 * k)
  | _ ->
    let ri = lower_expr st env idx in
    let scaled = new_value st in
    emit st (Bin (Shl, scaled, ri, C 2));
    let addr = new_value st in
    emit st (Bin (Add, addr, base, V scaled));
    (V addr, 0)

and lower_store st env (lv : Ast.lvalue) (rv : Ir.rv) =
  match lv with
  | Lvar x -> (
    match lookup env x with
    | Scalar v -> emit st (Def (v, rv))
    | Slot off ->
      let a = new_value st in
      emit st (Addr_local (a, off));
      emit st (Store (V a, 0, rv))
    | Arr _ -> fail "cannot assign to array %s" x
    | Gscalar g ->
      let a = new_value st in
      emit st (Addr_global (a, g));
      emit st (Store (V a, 0, rv))
    | Garr g -> fail "cannot assign to array %s" g)
  | Lindex (a, i) ->
    let addr, off = lower_index_addr st env a i in
    emit st (Store (addr, off, rv))
  | Lderef e ->
    let ra = lower_expr st env e in
    emit st (Store (ra, 0, rv))

and lower_call st env ~dst name args : Ir.rv =
  let rargs = List.map (lower_expr st env) args in
  let want_dst = match dst with `Value -> true | `Drop -> false in
  let builtin number nargs =
    if List.length rargs <> nargs then fail "%s expects %d arguments" name nargs;
    let d = if want_dst then Some (new_value st) else None in
    emit st (Syscall { dst = d; number = C number; args = rargs });
    match d with Some d -> Ir.V d | None -> C 0
  in
  match name with
  | "exit" -> builtin 1 1
  | "brk" -> builtin 3 1
  | "execve" -> builtin 11 3
  | _ ->
    if not (Hashtbl.mem st.func_names name) then fail "call to unknown function %s" name;
    let d = if want_dst then Some (new_value st) else None in
    emit st (Call { dst = d; callee = name; args = rargs; site = new_site st });
    (match d with Some d -> Ir.V d | None -> C 0)

and lower_cond st env (e : Ast.expr) (bt : binfo) (bf : binfo) =
  match e with
  | Bin (op, a, b) when cond_of_ast op <> None ->
    let c = match cond_of_ast op with Some c -> c | None -> assert false in
    let ra = lower_expr st env a in
    let rb = lower_expr st env b in
    terminate st (Br (c, ra, rb, bt.id, bf.id))
  | Bin (Land, a, b) ->
    let mid = new_block st in
    lower_cond st env a mid bf;
    switch st mid;
    lower_cond st env b bt bf
  | Bin (Lor, a, b) ->
    let mid = new_block st in
    lower_cond st env a bt mid;
    switch st mid;
    lower_cond st env b bt bf
  | Un (Not, a) -> lower_cond st env a bf bt
  | Num k -> terminate st (Jmp (if k <> 0 then bt.id else bf.id))
  | _ ->
    let r = lower_expr st env e in
    terminate st (Br (Ne, r, C 0, bt.id, bf.id))

(* Statement lowering threads the environment downward: a declaration
   extends the environment for the remaining statements of its list. *)

let rec lower_stmts st env loops addressed stmts =
  match stmts with
  | [] -> ()
  | s :: rest ->
    let env' = lower_stmt st env loops addressed s in
    lower_stmts st env' loops addressed rest

and lower_stmt st env loops addressed (s : Ast.stmt) =
  match s with
  | Decl (name, None, init) ->
    if Hashtbl.mem addressed name then begin
      let off = alloc_local st 4 in
      (match init with
      | Some e ->
        let rv = lower_expr st env e in
        let a = new_value st in
        emit st (Addr_local (a, off));
        emit st (Store (V a, 0, rv))
      | None -> ());
      (name, Slot off) :: env
    end
    else begin
      let v = new_value st in
      (match init with
      | Some e ->
        let rv = lower_expr st env e in
        emit st (Def (v, rv))
      | None -> emit st (Def (v, C 0)));
      (name, Scalar v) :: env
    end
  | Decl (name, Some words, _) ->
    if words <= 0 then fail "array %s must have positive size" name;
    let off = alloc_local st (4 * words) in
    (name, Arr off) :: env
  | Expr (Ast.Call (name, args)) ->
    ignore (lower_call st env ~dst:`Drop name args);
    env
  | Expr e ->
    ignore (lower_expr st env e);
    env
  | Print e ->
    let rv = lower_expr st env e in
    emit st (Syscall { dst = None; number = C 4; args = [ rv ] });
    env
  | If (c, then_s, else_s) ->
    let bt = new_block st in
    let bf = new_block st in
    let join = new_block st in
    lower_cond st env c bt bf;
    switch st bt;
    lower_stmts st env loops addressed then_s;
    terminate st (Jmp join.id);
    switch st bf;
    lower_stmts st env loops addressed else_s;
    terminate st (Jmp join.id);
    switch st join;
    env
  | While (c, body) ->
    let head = new_block st in
    let bbody = new_block st in
    let exit_b = new_block st in
    terminate st (Jmp head.id);
    switch st head;
    lower_cond st env c bbody exit_b;
    switch st bbody;
    lower_stmts st env { break_to = exit_b; continue_to = head } addressed body;
    terminate st (Jmp head.id);
    switch st exit_b;
    env
  | Do_while (body, c) ->
    let bbody = new_block st in
    let head = new_block st in
    let exit_b = new_block st in
    terminate st (Jmp bbody.id);
    switch st bbody;
    lower_stmts st env { break_to = exit_b; continue_to = head } addressed body;
    terminate st (Jmp head.id);
    switch st head;
    lower_cond st env c bbody exit_b;
    switch st exit_b;
    env
  | For (init, cond, step, body) ->
    let env' = match init with None -> env | Some s -> lower_stmt st env loops addressed s in
    let head = new_block st in
    let bbody = new_block st in
    let bstep = new_block st in
    let exit_b = new_block st in
    terminate st (Jmp head.id);
    switch st head;
    (match cond with
    | None -> terminate st (Jmp bbody.id)
    | Some c -> lower_cond st env' c bbody exit_b);
    switch st bbody;
    lower_stmts st env' { break_to = exit_b; continue_to = bstep } addressed body;
    terminate st (Jmp bstep.id);
    switch st bstep;
    (match step with None -> () | Some e -> ignore (lower_expr st env' e));
    terminate st (Jmp head.id);
    switch st exit_b;
    env
  | Return None ->
    terminate st (Ret (Some (C 0)));
    env
  | Return (Some e) ->
    let rv = lower_expr st env e in
    terminate st (Ret (Some rv));
    env
  | Break ->
    terminate st (Jmp loops.break_to.id);
    env
  | Continue ->
    terminate st (Jmp loops.continue_to.id);
    env

(* Which names have their address taken anywhere in the function?
   Name-based and conservative (shadowed names share the flag). *)
let addressed_names body =
  let tbl = Hashtbl.create 8 in
  let rec expr (e : Ast.expr) =
    match e with
    | Num _ | Var _ | Addr_fun _ -> ()
    | Addr_var x -> Hashtbl.replace tbl x ()
    | Addr_index (_, i) -> expr i
    | Bin (_, a, b) -> expr a; expr b
    | Un (_, a) -> expr a
    | Assign (lv, e) -> lvalue lv; expr e
    | Cond (a, b, c) -> expr a; expr b; expr c
    | Call (_, args) -> List.iter expr args
    | Call_ptr (f, args) -> expr f; List.iter expr args
    | Index (_, i) -> expr i
    | Deref e -> expr e
  and lvalue = function
    | Ast.Lvar _ -> ()
    | Lindex (_, i) -> expr i
    | Lderef e -> expr e
  and stmt (s : Ast.stmt) =
    match s with
    | Decl (_, _, init) -> Option.iter expr init
    | Expr e | Print e -> expr e
    | If (c, a, b) -> expr c; List.iter stmt a; List.iter stmt b
    | While (c, b) -> expr c; List.iter stmt b
    | Do_while (b, c) -> List.iter stmt b; expr c
    | For (i, c, st_e, b) ->
      Option.iter stmt i;
      Option.iter expr c;
      Option.iter expr st_e;
      List.iter stmt b
    | Return e -> Option.iter expr e
    | Break | Continue -> ()
  in
  List.iter stmt body;
  tbl

(* Function-pointer taint: values defined by Addr_func, propagated
   through plain moves. *)
let fp_taint blocks nvals =
  let tainted = Array.make (max 1 nvals) false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        List.iter
          (fun (i : Ir.instr) ->
            match i with
            | Addr_func (d, _) ->
              if not tainted.(d) then begin
                tainted.(d) <- true;
                changed := true
              end
            | Def (d, V s) ->
              if tainted.(s) && not tainted.(d) then begin
                tainted.(d) <- true;
                changed := true
              end
            | Def _ | Bin _ | Cmpset _ | Load _ | Store _ | Addr_local _ | Addr_global _
            | Call _ | Calli _ | Syscall _ ->
              ())
          (List.rev b.rev_instrs))
      blocks
  done;
  List.filter (fun v -> tainted.(v)) (List.init nvals (fun i -> i))

let lower_func func_names global_kinds (f : Ast.func) : Ir.func =
  let entry = { id = 0; rev_instrs = []; term = None } in
  let st =
    {
      nvals = 0;
      blocks = [ entry ];
      cur = entry;
      nsites = 0;
      locals_bytes = 0;
      func_names;
      global_kinds;
    }
  in
  let addressed = addressed_names f.f_body in
  (* Parameters are the first values; address-taken parameters are
     copied to a locals slot at entry. *)
  let params = List.map (fun _ -> new_value st) f.f_params in
  let env =
    List.map2
      (fun name v ->
        if Hashtbl.mem addressed name then begin
          let off = alloc_local st 4 in
          let a = new_value st in
          emit st (Addr_local (a, off));
          emit st (Store (V a, 0, Ir.V v));
          (name, Slot off)
        end
        else (name, Scalar v))
      f.f_params params
  in
  let genv =
    Hashtbl.fold
      (fun g kind acc ->
        match kind with
        | `Scalar -> (g, Gscalar g) :: acc
        | `Array -> (g, Garr g) :: acc)
      global_kinds []
  in
  lower_stmts st (env @ genv) { break_to = entry; continue_to = entry } addressed f.f_body;
  terminate st (Ret (Some (C 0)));
  let blocks_in_order = List.rev st.blocks in
  (* Seal every unterminated block (unreachable continuations). *)
  List.iter (fun b -> if b.term = None then b.term <- Some (Ir.Ret (Some (C 0)))) blocks_in_order;
  let fp_values = fp_taint blocks_in_order st.nvals in
  let blocks =
    Array.of_list
      (List.map
         (fun b ->
           {
             Ir.b_label = b.id;
             b_instrs = Array.of_list (List.rev b.rev_instrs);
             b_term = (match b.term with Some t -> t | None -> assert false);
           })
         blocks_in_order)
  in
  {
    Ir.fn_name = f.f_name;
    fn_params = params;
    fn_nvals = st.nvals;
    fn_locals_bytes = st.locals_bytes;
    fn_blocks = blocks;
    fn_nsites = st.nsites;
    fn_fp_values = fp_values;
  }

let program (p : Ast.program) : Ir.program =
  let func_names = Hashtbl.create 16 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace func_names f.f_name ()) p.funcs;
  let global_kinds = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      Hashtbl.replace global_kinds g.g_name (if g.g_size = 1 then `Scalar else `Array))
    p.globals;
  if not (Hashtbl.mem func_names "main") then fail "program has no main function";
  let funcs = List.map (lower_func func_names global_kinds) p.funcs in
  let globals = List.map (fun (g : Ast.global) -> (g.g_name, g.g_size, g.g_init)) p.globals in
  { Ir.pr_funcs = funcs; pr_globals = globals }
