(** Lowering MiniC to the IR.

    Responsibilities beyond straightforward translation:
    - address-taken scalars (and all arrays) are placed in the
      ISA-agnostic locals area; everything else becomes a virtual
      register;
    - short-circuit operators, ternaries and conditions lower to
      explicit control flow, so flags never cross block boundaries;
    - the builtins [exit(n)], [brk(n)] and [execve(a,b,c)] lower to
      syscalls, [print(e)] to the print syscall;
    - taking the address of a function lowers to [Addr_func] and
      taints the destination value as a function pointer (the symbol
      table needs this to transform code addresses during cross-ISA
      migration). *)

exception Error of string

val program : Hipstr_minic.Ast.program -> Ir.program
(** @raise Error on undeclared variables, unknown callees, or a
    missing [main]. *)
