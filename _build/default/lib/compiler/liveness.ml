module IntSet = Set.Make (Int)

type t = {
  nblocks : int;
  live_in_sets : IntSet.t array;
  live_out_sets : IntSet.t array;
  across_call : IntSet.t;
  across_syscall : IntSet.t;
}

let rv_uses rvs = IntSet.of_list (Ir.values_of_rvs rvs)

let transfer_instr (i : Ir.instr) live =
  let live = List.fold_left (fun s d -> IntSet.remove d s) live (Ir.defs i) in
  IntSet.union live (rv_uses (Ir.uses i))

let analyze (f : Ir.func) =
  let n = Array.length f.fn_blocks in
  let live_in_sets = Array.make n IntSet.empty in
  let live_out_sets = Array.make n IntSet.empty in
  let block_live_in b live_out =
    let live = IntSet.union live_out (rv_uses (Ir.term_uses b.Ir.b_term)) in
    Array.fold_right transfer_instr b.Ir.b_instrs live
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let b = f.fn_blocks.(i) in
      let out =
        List.fold_left
          (fun acc l -> IntSet.union acc live_in_sets.(l))
          IntSet.empty
          (Ir.successors b.b_term)
      in
      let inn = block_live_in b out in
      if not (IntSet.equal out live_out_sets.(i)) || not (IntSet.equal inn live_in_sets.(i))
      then begin
        live_out_sets.(i) <- out;
        live_in_sets.(i) <- inn;
        changed := true
      end
    done
  done;
  (* Values crossing calls / syscalls: scan each block backward with
     the running live set; at a call, everything live after it that
     the call does not define crosses it. *)
  let across_call = ref IntSet.empty in
  let across_syscall = ref IntSet.empty in
  for i = 0 to n - 1 do
    let b = f.fn_blocks.(i) in
    let live = ref (IntSet.union live_out_sets.(i) (rv_uses (Ir.term_uses b.b_term))) in
    for j = Array.length b.b_instrs - 1 downto 0 do
      let ins = b.b_instrs.(j) in
      let after = !live in
      live := transfer_instr ins after;
      if Ir.instr_has_call ins then begin
        let crossing = List.fold_left (fun s d -> IntSet.remove d s) after (Ir.defs ins) in
        across_call := IntSet.union !across_call crossing;
        match ins with
        | Syscall _ -> across_syscall := IntSet.union !across_syscall crossing
        | Call _ | Calli _ | Def _ | Bin _ | Cmpset _ | Load _ | Store _ | Addr_local _
        | Addr_global _ | Addr_func _ ->
          ()
      end
    done
  done;
  {
    nblocks = n;
    live_in_sets;
    live_out_sets;
    across_call = !across_call;
    across_syscall = !across_syscall;
  }

let live_in t l =
  if l < 0 || l >= t.nblocks then invalid_arg "Liveness.live_in";
  IntSet.elements t.live_in_sets.(l)

let live_out t l =
  if l < 0 || l >= t.nblocks then invalid_arg "Liveness.live_out";
  IntSet.elements t.live_out_sets.(l)

let crossing_at t (f : Ir.func) l j =
  let b = f.fn_blocks.(l) in
  let live = ref (IntSet.union t.live_out_sets.(l) (rv_uses (Ir.term_uses b.b_term))) in
  let result = ref IntSet.empty in
  for k = Array.length b.b_instrs - 1 downto 0 do
    let ins = b.b_instrs.(k) in
    if k = j then
      result := List.fold_left (fun s d -> IntSet.remove d s) !live (Ir.defs ins);
    live := transfer_instr ins !live
  done;
  IntSet.elements !result

let live_across_call t = IntSet.elements t.across_call
let live_across_syscall t = IntSet.elements t.across_syscall

let use_counts (f : Ir.func) =
  let n = Array.length f.fn_blocks in
  (* Back-edge ranges approximate loop bodies: an edge b -> h with
     h <= b encloses blocks h..b. *)
  let depth = Array.make n 0 in
  Array.iter
    (fun b ->
      List.iter
        (fun l ->
          if l <= b.Ir.b_label then
            for k = l to b.Ir.b_label do
              depth.(k) <- min 3 (depth.(k) + 1)
            done)
        (Ir.successors b.Ir.b_term))
    f.fn_blocks;
  let counts = Array.make (max 1 f.fn_nvals) 0 in
  let weight_of l = 1 lsl (3 * depth.(l)) in
  Array.iter
    (fun b ->
      let w = weight_of b.Ir.b_label in
      let bump v = counts.(v) <- counts.(v) + w in
      Array.iter
        (fun i ->
          List.iter bump (Ir.defs i);
          List.iter bump (Ir.values_of_rvs (Ir.uses i)))
        b.Ir.b_instrs;
      List.iter bump (Ir.values_of_rvs (Ir.term_uses b.b_term)))
    f.fn_blocks;
  counts
