(** The symmetric multi-ISA stack frame (Section 3.2 of the paper).

    Both ISA backends use the *same* frame layout for a function, so
    that at migration time stack contents correspond
    position-for-position:

    {v
    sp + 0                     outgoing argument / syscall staging slots
    sp + locals_off            locals area (arrays, address-taken scalars)
    sp + <value slots>         one word per value needing a slot
                               (spill homes and call-crossing shadows)
    sp + scratch_off           translator staging slots (2 words)
    sp + frame_bytes - 4       return address slot
    v}

    Conventions producing identical layouts on both ISAs:
    - CISC: [call] pushes the return address; the prologue subtracts
      [frame_bytes - 4], so the pushed word *is* the return-address
      slot.
    - RISC: [call] writes the link register; the prologue subtracts
      [frame_bytes] and stores [lr] into the return-address slot.

    In both cases the callee's [sp] is the caller's [sp] minus
    [frame_bytes], and incoming argument [j] is at
    [sp + frame_bytes + 4*j] (the caller's outgoing slot [j]). *)

type t = {
  outgoing_words : int;
  locals_off : int;
  locals_bytes : int;
  slot_off : int array;  (** value id -> frame byte offset, or -1 *)
  scratch_off : int;
  ret_off : int;  (** = frame_bytes - 4 *)
  frame_bytes : int;  (** 16-byte aligned *)
}

val layout : Ir.func -> needs_slot:bool array -> t
(** [needs_slot] is the union of both ISAs' slot requirements. *)

val incoming_arg_off : t -> int -> int

val max_outgoing : Ir.func -> int
(** Words of outgoing-argument space the function's call sites and
    syscalls require. *)
