module IntSet = Set.Make (Int)

type home = Hreg of int | Hslot

type result = { homes : home array; needs_slot : bool array }

let build_interference (f : Ir.func) (lv : Liveness.t) =
  let n = f.fn_nvals in
  let adj = Array.make (max 1 n) IntSet.empty in
  let edge a b =
    if a <> b then begin
      adj.(a) <- IntSet.add b adj.(a);
      adj.(b) <- IntSet.add a adj.(b)
    end
  in
  let clique vs = List.iteri (fun i a -> List.iteri (fun j b -> if j > i then edge a b) vs) vs in
  (* Parameters are all defined at entry, simultaneously with the
     entry live-ins. *)
  clique (List.sort_uniq compare (f.fn_params @ Liveness.live_in lv 0));
  Array.iter
    (fun b ->
      let live =
        ref
          (IntSet.union
             (IntSet.of_list (Liveness.live_out lv b.Ir.b_label))
             (IntSet.of_list (Ir.values_of_rvs (Ir.term_uses b.Ir.b_term))))
      in
      for j = Array.length b.Ir.b_instrs - 1 downto 0 do
        let ins = b.Ir.b_instrs.(j) in
        let after = !live in
        List.iter (fun d -> IntSet.iter (fun u -> edge d u) (IntSet.remove d after)) (Ir.defs ins);
        let removed = List.fold_left (fun s d -> IntSet.remove d s) after (Ir.defs ins) in
        live := IntSet.union removed (IntSet.of_list (Ir.values_of_rvs (Ir.uses ins)))
      done)
    f.fn_blocks;
  adj

let allocate (desc : Hipstr_isa.Desc.t) (f : Ir.func) (lv : Liveness.t) =
  let n = f.fn_nvals in
  let adj = build_interference f lv in
  let counts = Liveness.use_counts f in
  let across_call = IntSet.of_list (Liveness.live_across_call lv) in
  let across_syscall = IntSet.of_list (Liveness.live_across_syscall lv) in
  let homes = Array.make (max 1 n) Hslot in
  let assigned = Array.make (max 1 n) false in
  let order = List.init n (fun i -> i) in
  let order = List.sort (fun a b -> compare counts.(b) counts.(a)) order in
  let syscall_regs = IntSet.of_list [ 0; 1; 2; 3 ] in
  List.iter
    (fun v ->
      let allowed =
        List.filter
          (fun r -> not (IntSet.mem v across_syscall && IntSet.mem r syscall_regs))
          desc.allocatable
      in
      let taken =
        IntSet.fold
          (fun u acc ->
            if assigned.(u) then
              match homes.(u) with Hreg r -> IntSet.add r acc | Hslot -> acc
            else acc)
          adj.(v) IntSet.empty
      in
      (match List.find_opt (fun r -> not (IntSet.mem r taken)) allowed with
      | Some r -> homes.(v) <- Hreg r
      | None -> homes.(v) <- Hslot);
      assigned.(v) <- true)
    order;
  let needs_slot =
    Array.init (max 1 n) (fun v ->
        if n = 0 then false
        else
          match homes.(v) with
          | Hslot -> true
          | Hreg _ -> IntSet.mem v across_call)
  in
  { homes; needs_slot }
