type t = {
  outgoing_words : int;
  locals_off : int;
  locals_bytes : int;
  slot_off : int array;
  scratch_off : int;
  ret_off : int;
  frame_bytes : int;
}

let align16 n = (n + 15) land lnot 15

let max_outgoing (f : Ir.func) =
  let worst = ref 0 in
  Array.iter
    (fun b ->
      Array.iter
        (fun (i : Ir.instr) ->
          match i with
          | Call { args; _ } | Calli { args; _ } -> worst := max !worst (List.length args)
          | Syscall { args; _ } -> worst := max !worst (1 + List.length args)
          | Def _ | Bin _ | Cmpset _ | Load _ | Store _ | Addr_local _ | Addr_global _
          | Addr_func _ ->
            ())
        b.Ir.b_instrs)
    f.fn_blocks;
  !worst

let layout (f : Ir.func) ~needs_slot =
  let outgoing_words = max_outgoing f in
  let locals_off = 4 * outgoing_words in
  let locals_bytes = (f.fn_locals_bytes + 3) land lnot 3 in
  let cursor = ref (locals_off + locals_bytes) in
  let slot_off =
    Array.init
      (max 1 f.fn_nvals)
      (fun v ->
        if v < f.fn_nvals && needs_slot.(v) then begin
          let off = !cursor in
          cursor := off + 4;
          off
        end
        else -1)
  in
  let scratch_off = !cursor in
  let frame_bytes = align16 (scratch_off + 8 + 4) in
  {
    outgoing_words;
    locals_off;
    locals_bytes;
    slot_off;
    scratch_off;
    ret_off = frame_bytes - 4;
    frame_bytes;
  }

let incoming_arg_off t j = t.frame_bytes + (4 * j)
