open Hipstr_isa

type value = int
type label = int

type rv = V of value | C of int

type instr =
  | Def of value * rv
  | Bin of Minstr.binop * value * rv * rv
  | Cmpset of Minstr.cond * value * rv * rv
  | Load of value * rv * int
  | Store of rv * int * rv
  | Addr_local of value * int
  | Addr_global of value * string
  | Addr_func of value * string
  | Call of { dst : value option; callee : string; args : rv list; site : int }
  | Calli of { dst : value option; fp : rv; args : rv list; site : int }
  | Syscall of { dst : value option; number : rv; args : rv list }

type term = Ret of rv option | Jmp of label | Br of Minstr.cond * rv * rv * label * label

type block = { b_label : label; b_instrs : instr array; b_term : term }

type func = {
  fn_name : string;
  fn_params : value list;
  fn_nvals : int;
  fn_locals_bytes : int;
  fn_blocks : block array;
  fn_nsites : int;
  fn_fp_values : value list;
}

type program = { pr_funcs : func list; pr_globals : (string * int * int list) list }

let defs = function
  | Def (d, _) | Bin (_, d, _, _) | Cmpset (_, d, _, _) | Load (d, _, _) | Addr_local (d, _)
  | Addr_global (d, _) | Addr_func (d, _) ->
    [ d ]
  | Call { dst; _ } | Calli { dst; _ } | Syscall { dst; _ } -> (
    match dst with Some d -> [ d ] | None -> [])
  | Store _ -> []

let uses = function
  | Def (_, s) -> [ s ]
  | Bin (_, _, a, b) | Cmpset (_, _, a, b) -> [ a; b ]
  | Load (_, a, _) -> [ a ]
  | Store (a, _, s) -> [ a; s ]
  | Addr_local _ | Addr_global _ | Addr_func _ -> []
  | Call { args; _ } -> args
  | Calli { fp; args; _ } -> fp :: args
  | Syscall { number; args; _ } -> number :: args

let term_uses = function Ret None | Jmp _ -> [] | Ret (Some v) -> [ v ] | Br (_, a, b, _, _) -> [ a; b ]

let successors = function Ret _ -> [] | Jmp l -> [ l ] | Br (_, _, _, l1, l2) -> [ l1; l2 ]

let values_of_rvs rvs = List.filter_map (function V v -> Some v | C _ -> None) rvs

let instr_has_call = function
  | Call _ | Calli _ | Syscall _ -> true
  | Def _ | Bin _ | Cmpset _ | Load _ | Store _ | Addr_local _ | Addr_global _ | Addr_func _ ->
    false

let pp_rv ppf = function
  | V v -> Format.fprintf ppf "v%d" v
  | C k -> Format.fprintf ppf "%d" k

let pp_instr ppf i =
  let p fmt = Format.fprintf ppf fmt in
  match i with
  | Def (d, s) -> p "v%d := %a" d pp_rv s
  | Bin (op, d, a, b) -> p "v%d := %a %s %a" d pp_rv a (Minstr.string_of_binop op) pp_rv b
  | Cmpset (c, d, a, b) -> p "v%d := %a %s %a" d pp_rv a (Minstr.string_of_cond c) pp_rv b
  | Load (d, a, k) -> p "v%d := mem[%a + %d]" d pp_rv a k
  | Store (a, k, s) -> p "mem[%a + %d] := %a" pp_rv a k pp_rv s
  | Addr_local (d, off) -> p "v%d := &local[%d]" d off
  | Addr_global (d, g) -> p "v%d := &%s" d g
  | Addr_func (d, f) -> p "v%d := &&%s" d f
  | Call { dst; callee; args; site } ->
    (match dst with Some d -> p "v%d := " d | None -> ());
    p "call %s(%a) #%d" callee (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_rv) args site
  | Calli { dst; fp; args; site } ->
    (match dst with Some d -> p "v%d := " d | None -> ());
    p "calli %a(%a) #%d" pp_rv fp (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_rv) args site
  | Syscall { dst; number; args } ->
    (match dst with Some d -> p "v%d := " d | None -> ());
    p "syscall %a(%a)" pp_rv number (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_rv) args

let pp_term ppf = function
  | Ret None -> Format.fprintf ppf "ret"
  | Ret (Some v) -> Format.fprintf ppf "ret %a" pp_rv v
  | Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Br (c, a, b, l1, l2) ->
    Format.fprintf ppf "br %a %s %a ? L%d : L%d" pp_rv a (Minstr.string_of_cond c) pp_rv b l1 l2

let pp_func ppf f =
  Format.fprintf ppf "func %s(%s) vals=%d locals=%dB@." f.fn_name
    (String.concat ", " (List.map (Printf.sprintf "v%d") f.fn_params))
    f.fn_nvals f.fn_locals_bytes;
  Array.iter
    (fun b ->
      Format.fprintf ppf "L%d:@." b.b_label;
      Array.iter (fun i -> Format.fprintf ppf "  %a@." pp_instr i) b.b_instrs;
      Format.fprintf ppf "  %a@." pp_term b.b_term)
    f.fn_blocks

let pp_program ppf p =
  List.iter (fun (g, words, _) -> Format.fprintf ppf "global %s[%d]@." g words) p.pr_globals;
  List.iter (pp_func ppf) p.pr_funcs

let validate p =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_func f =
    let nblocks = Array.length f.fn_blocks in
    if nblocks = 0 then err "%s: no blocks" f.fn_name
    else begin
      let sites = Hashtbl.create 8 in
      let problem = ref None in
      let set_problem s = if !problem = None then problem := Some s in
      let check_value v =
        if v < 0 || v >= f.fn_nvals then set_problem (Printf.sprintf "%s: value v%d out of range" f.fn_name v)
      in
      let check_rv = function V v -> check_value v | C _ -> () in
      let check_site s =
        if s < 0 || s >= f.fn_nsites then
          set_problem (Printf.sprintf "%s: site %d out of range" f.fn_name s)
        else if Hashtbl.mem sites s then set_problem (Printf.sprintf "%s: duplicate site %d" f.fn_name s)
        else Hashtbl.add sites s ()
      in
      Array.iteri
        (fun i b ->
          if b.b_label <> i then set_problem (Printf.sprintf "%s: block %d mislabeled" f.fn_name i);
          Array.iter
            (fun ins ->
              List.iter check_value (defs ins);
              List.iter check_rv (uses ins);
              match ins with
              | Call { site; _ } | Calli { site; _ } -> check_site site
              | Def _ | Bin _ | Cmpset _ | Load _ | Store _ | Addr_local _ | Addr_global _
              | Addr_func _ | Syscall _ ->
                ())
            b.b_instrs;
          List.iter check_rv (term_uses b.b_term);
          List.iter
            (fun l ->
              if l < 0 || l >= nblocks then
                set_problem (Printf.sprintf "%s: label L%d out of range" f.fn_name l))
            (successors b.b_term))
        f.fn_blocks;
      match !problem with None -> Ok () | Some s -> Error s
    end
  in
  let rec all = function
    | [] ->
      if List.exists (fun f -> f.fn_name = "main") p.pr_funcs then Ok ()
      else Error "no main function"
    | f :: rest -> (
      match check_func f with Ok () -> all rest | Error _ as e -> e)
  in
  all p.pr_funcs
