module Machine = Hipstr_machine.Machine

exception Error of string

let to_ir src =
  let ast =
    try Hipstr_minic.Parser.parse src
    with Hipstr_minic.Parser.Error m -> raise (Error ("parse: " ^ m))
  in
  let ir = try Lower.program ast with Lower.Error m -> raise (Error ("lower: " ^ m)) in
  match Ir.validate ir with Ok () -> ir | Error m -> raise (Error ("validate: " ^ m))

let to_fatbin src =
  let ir = to_ir src in
  try Fatbin.link ir with Failure m -> raise (Error ("link: " ^ m))

let load_program src ~active ?(rat_capacity = None) () =
  let fb = to_fatbin src in
  let m = Machine.create ~rat_capacity ~active () in
  Fatbin.load fb (Machine.mem m);
  Machine.boot m ~entry:(Fatbin.entry fb active);
  (fb, m)
