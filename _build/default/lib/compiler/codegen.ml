open Hipstr_isa
open Minstr

type target = Tblock of Ir.label | Toffset of int | Tfunc of string | Tglobal of string

type item = { it_ins : Minstr.t; it_target : target option }

type t = {
  cg_items : item array;
  cg_block_off : int array;
  cg_block_size : int array;
  cg_size : int;
  cg_callsites : (int * int) list;
}

(* Placeholder for addresses resolved at link time. Wide on RISC
   (does not fit 16 bits), so lengths are final. *)
let placeholder = 0x7FF0000

type gst = {
  desc : Desc.t;
  frame : Frame.t;
  alloc : Regalloc.result;
  mutable rev_items : item list;
  mutable off : int;
  mutable callsites : (int * int) list;
}

let ilen st ins =
  match st.desc.which with
  | Desc.Cisc -> Hipstr_cisc.Isa.length ins
  | Desc.Risc -> Hipstr_risc.Isa.length ins

let emit ?target st ins =
  st.rev_items <- { it_ins = ins; it_target = target } :: st.rev_items;
  st.off <- st.off + ilen st ins

let sp st = st.desc.sp
let scr st = st.desc.scratch
let scr2 st = st.desc.scratch2

let home st v : operand =
  match st.alloc.homes.(v) with
  | Regalloc.Hreg r -> Reg r
  | Regalloc.Hslot -> Mem { base = sp st; disp = st.frame.slot_off.(v) }

let rv_op st : Ir.rv -> operand = function V v -> home st v | C k -> Imm k

let is_reg = function Reg _ -> true | Imm _ | Mem _ -> false

let cisc st = st.desc.which = Desc.Cisc

(* mov that respects each ISA's legal operand shapes. *)
let emit_mov st dst src =
  if dst = src then ()
  else
    match (dst, src) with
    | Reg _, _ when cisc st -> emit st (Mov (dst, src))
    | Mem _, (Reg _ | Imm _) when cisc st -> emit st (Mov (dst, src))
    | Mem _, Mem _ when cisc st ->
      emit st (Mov (Reg (scr st), src));
      emit st (Mov (dst, Reg (scr st)))
    | Reg _, _ -> emit st (Mov (dst, src))
    | Mem _, Reg _ -> emit st (Mov (dst, src))
    | Mem _, (Imm _ | Mem _) ->
      emit st (Mov (Reg (scr st), src));
      emit st (Mov (dst, Reg (scr st)))
    | Imm _, _ -> invalid_arg "codegen: mov to immediate"

(* Address operand for mem[base_rv + k]: returns an operand usable as
   a memory reference, loading the base into [scr] if needed. *)
let mem_at st base_rv k : operand =
  match rv_op st base_rv with
  | Reg r -> Mem { base = r; disp = k }
  | (Imm _ | Mem _) as op ->
    emit_mov st (Reg (scr st)) op;
    Mem { base = scr st; disp = k }

let gen_binop st op d a b =
  let dop = home st d in
  let aop = rv_op st a in
  let bop = rv_op st b in
  if cisc st then begin
    match dop with
    | Reg r when bop <> Reg r ->
      emit_mov st dop aop;
      emit st (Binop (op, dop, bop))
    | _ ->
      (* through scratch; CISC allows a memory source operand *)
      emit_mov st (Reg (scr st)) aop;
      emit st (Binop (op, Reg (scr st), bop));
      emit_mov st dop (Reg (scr st))
  end
  else begin
    let rd = match dop with Reg r when bop <> Reg r -> r | _ -> scr st in
    emit_mov st (Reg rd) aop;
    (match bop with
    | Imm k -> emit st (Binop (op, Reg rd, Imm k))
    | Reg rb -> emit st (Binop (op, Reg rd, Reg rb))
    | Mem _ ->
      emit_mov st (Reg (scr2 st)) bop;
      emit st (Binop (op, Reg rd, Reg (scr2 st))));
    if Reg rd <> dop then emit_mov st dop (Reg rd)
  end

(* Emit a comparison of two rvs with legal shapes. *)
let gen_cmp st a b =
  let aop = rv_op st a in
  let bop = rv_op st b in
  if cisc st then begin
    match (aop, bop) with
    | Reg _, _ -> emit st (Cmp (aop, bop))
    | Mem _, (Reg _ | Imm _) -> emit st (Cmp (aop, bop))
    | Mem _, Mem _ ->
      emit_mov st (Reg (scr st)) aop;
      emit st (Cmp (Reg (scr st), bop))
    | Imm _, _ ->
      emit_mov st (Reg (scr st)) aop;
      emit st (Cmp (Reg (scr st), bop))
  end
  else begin
    let ra =
      match aop with
      | Reg r -> r
      | Imm _ | Mem _ ->
        emit_mov st (Reg (scr st)) aop;
        scr st
    in
    match bop with
    | Imm k -> emit st (Cmp (Reg ra, Imm k))
    | Reg rb -> emit st (Cmp (Reg ra, Reg rb))
    | Mem _ ->
      emit_mov st (Reg (scr2 st)) bop;
      emit st (Cmp (Reg ra, Reg (scr2 st)))
  end

let gen_cmpset st c d a b =
  gen_cmp st a b;
  let dop = home st d in
  let direct = cisc st || is_reg dop in
  let target_op = if direct then dop else Reg (scr st) in
  emit st (Mov (target_op, Imm 1));
  (* skip over the "mov 0" when the condition holds *)
  let mov0 = Mov (target_op, Imm 0) in
  let skip_off = st.off + ilen st (Jcc (c, placeholder)) + ilen st mov0 in
  emit ~target:(Toffset skip_off) st (Jcc (c, placeholder));
  emit st mov0;
  if not direct then emit_mov st dop target_op

let gen_load st d base k =
  let addr = mem_at st base k in
  let dop = home st d in
  if is_reg dop then emit st (Mov (dop, addr))
  else begin
    emit st (Mov (Reg (scr2 st), addr));
    emit st (Mov (dop, Reg (scr2 st)))
  end

let gen_store st base k src =
  let addr = mem_at st base k in
  let sop = rv_op st src in
  match sop with
  | Reg _ -> emit st (Mov (addr, sop))
  | Imm _ when cisc st -> emit st (Mov (addr, sop))
  | Imm _ | Mem _ ->
    emit_mov st (Reg (scr2 st)) sop;
    emit st (Mov (addr, Reg (scr2 st)))

let gen_addr st d disp target =
  let dop = home st d in
  match target with
  | None ->
    (* sp-relative locals-area address *)
    if is_reg dop then
      emit st (Lea ((match dop with Reg r -> r | _ -> assert false), sp st, disp))
    else begin
      emit st (Lea (scr st, sp st, disp));
      emit st (Mov (dop, Reg (scr st)))
    end
  | Some tgt ->
    if is_reg dop then emit ~target:tgt st (Mov (dop, Imm placeholder))
    else if cisc st then emit ~target:tgt st (Mov (dop, Imm placeholder))
    else begin
      emit ~target:tgt st (Mov (Reg (scr st), Imm placeholder));
      emit st (Mov (dop, Reg (scr st)))
    end

(* Save register-homed crossing values to their shadow slots, or
   reload them. *)
let shadow_moves st crossing ~save =
  List.iter
    (fun v ->
      match st.alloc.homes.(v) with
      | Regalloc.Hreg r ->
        let slot = Mem { base = sp st; disp = st.frame.slot_off.(v) } in
        if save then emit st (Mov (slot, Reg r)) else emit st (Mov (Reg r, slot))
      | Regalloc.Hslot -> ())
    crossing

let gen_store_direct st slot rv =
  let sop = rv_op st rv in
  match sop with
  | Reg _ -> emit st (Mov (slot, sop))
  | Imm _ when cisc st -> emit st (Mov (slot, sop))
  | Imm _ | Mem _ ->
    emit_mov st (Reg (scr2 st)) sop;
    emit st (Mov (slot, Reg (scr2 st)))

let store_outgoing st j rv = gen_store_direct st (Mem { base = sp st; disp = 4 * j }) rv

let gen_call st crossing dst ~emit_transfer args site =
  shadow_moves st crossing ~save:true;
  List.iteri (fun j a -> store_outgoing st j a) args;
  emit_transfer ();
  st.callsites <- (site, st.off) :: st.callsites;
  (match dst with Some d -> emit_mov st (home st d) (Reg st.desc.ret_reg) | None -> ());
  shadow_moves st crossing ~save:false

let gen_syscall st crossing dst number args =
  shadow_moves st crossing ~save:true;
  store_outgoing st 0 number;
  List.iteri (fun j a -> store_outgoing st (j + 1) a) args;
  let n = List.length args in
  for j = 0 to n do
    emit st (Mov (Reg j, Mem { base = sp st; disp = 4 * j }))
  done;
  emit st Syscall;
  (match dst with Some d -> emit_mov st (home st d) (Reg st.desc.ret_reg) | None -> ());
  shadow_moves st crossing ~save:false

let gen_prologue st (f : Ir.func) =
  let fb = st.frame.frame_bytes in
  if st.desc.call_pushes_ret then emit st (Binop (Sub, Reg (sp st), Imm (fb - 4)))
  else begin
    emit st (Binop (Sub, Reg (sp st), Imm fb));
    match st.desc.lr with
    | Some lr -> emit st (Mov (Mem { base = sp st; disp = st.frame.ret_off }, Reg lr))
    | None -> assert false
  end;
  List.iteri
    (fun j v ->
      let incoming = Mem { base = sp st; disp = Frame.incoming_arg_off st.frame j } in
      emit_mov st (home st v) incoming)
    f.fn_params

let gen_epilogue st rv =
  (match rv with
  | Some r -> emit_mov st (Reg st.desc.ret_reg) (rv_op st r)
  | None -> ());
  let fb = st.frame.frame_bytes in
  if st.desc.call_pushes_ret then begin
    emit st (Binop (Add, Reg (sp st), Imm (fb - 4)));
    emit st Ret
  end
  else begin
    let lr = match st.desc.lr with Some lr -> lr | None -> assert false in
    emit st (Mov (Reg lr, Mem { base = sp st; disp = st.frame.ret_off }));
    emit st (Binop (Add, Reg (sp st), Imm fb));
    emit st (Retr lr)
  end

let gen_instr st lv (f : Ir.func) l j (ins : Ir.instr) =
  match ins with
  | Def (d, rv) -> emit_mov st (home st d) (rv_op st rv)
  | Bin (op, d, a, b) -> gen_binop st op d a b
  | Cmpset (c, d, a, b) -> gen_cmpset st c d a b
  | Load (d, a, k) -> gen_load st d a k
  | Store (a, k, s) -> gen_store st a k s
  | Addr_local (d, off) -> gen_addr st d (st.frame.locals_off + off) None
  | Addr_global (d, g) -> gen_addr st d 0 (Some (Tglobal g))
  | Addr_func (d, fn) -> gen_addr st d 0 (Some (Tfunc fn))
  | Call { dst; callee; args; site } ->
    let crossing = Liveness.crossing_at lv f l j in
    gen_call st crossing dst args site ~emit_transfer:(fun () ->
        emit ~target:(Tfunc callee) st (Call placeholder))
  | Calli { dst; fp; args; site } ->
    let crossing = Liveness.crossing_at lv f l j in
    gen_call st crossing dst args site ~emit_transfer:(fun () ->
        let fop = rv_op st fp in
        match fop with
        | Reg r -> emit st (Callr (Reg r))
        | Mem _ when cisc st -> emit st (Callr fop)
        | Imm _ | Mem _ ->
          emit_mov st (Reg (scr st)) fop;
          emit st (Callr (Reg (scr st))))
  | Syscall { dst; number; args } ->
    let crossing = Liveness.crossing_at lv f l j in
    gen_syscall st crossing dst number args

let gen_term st l nblocks (t : Ir.term) =
  match t with
  | Ret rv -> gen_epilogue st rv
  | Jmp tgt ->
    ignore nblocks;
    if tgt <> l + 1 then emit ~target:(Tblock tgt) st (Jmp placeholder)
  | Br (c, a, b, lt, lf) ->
    gen_cmp st a b;
    if lf = l + 1 then emit ~target:(Tblock lt) st (Jcc (c, placeholder))
    else if lt = l + 1 then emit ~target:(Tblock lf) st (Jcc (negate_cond c, placeholder))
    else begin
      emit ~target:(Tblock lt) st (Jcc (c, placeholder));
      emit ~target:(Tblock lf) st (Jmp placeholder)
    end

let gen desc (f : Ir.func) frame alloc lv =
  let st = { desc; frame; alloc; rev_items = []; off = 0; callsites = [] } in
  let nblocks = Array.length f.fn_blocks in
  let block_off = Array.make nblocks 0 in
  let block_size = Array.make nblocks 0 in
  Array.iteri
    (fun l b ->
      block_off.(l) <- st.off;
      if l = 0 then gen_prologue st f;
      Array.iteri (fun j ins -> gen_instr st lv f l j ins) b.Ir.b_instrs;
      gen_term st l nblocks b.Ir.b_term;
      block_size.(l) <- st.off - block_off.(l))
    f.fn_blocks;
  {
    cg_items = Array.of_list (List.rev st.rev_items);
    cg_block_off = block_off;
    cg_block_size = block_size;
    cg_size = st.off;
    cg_callsites = List.rev st.callsites;
  }

let retarget ins addr =
  match ins with
  | Jmp _ -> Jmp addr
  | Jcc (c, _) -> Jcc (c, addr)
  | Call _ -> Call addr
  | Mov (d, Imm _) -> Mov (d, Imm addr)
  | _ -> invalid_arg "codegen: cannot retarget instruction"

let resolve_item ~base ~at:_ ~block_addr ~func_entry ~global_addr item =
  match item.it_target with
  | None -> item.it_ins
  | Some (Tblock l) -> retarget item.it_ins (block_addr l)
  | Some (Toffset o) -> retarget item.it_ins (base + o)
  | Some (Tfunc fn) -> retarget item.it_ins (func_entry fn)
  | Some (Tglobal g) -> retarget item.it_ins (global_addr g)

let encode_all desc ~base ~block_addr ~func_entry ~global_addr t =
  let buf = Buffer.create 1024 in
  let off = ref 0 in
  Array.iter
    (fun item ->
      let at = base + !off in
      let ins = resolve_item ~base ~at ~block_addr ~func_entry ~global_addr item in
      let bytes =
        match desc.Desc.which with
        | Desc.Cisc -> Hipstr_cisc.Isa.encode ~at ins
        | Desc.Risc -> Hipstr_risc.Isa.encode ~at ins
      in
      Buffer.add_string buf bytes;
      off := !off + String.length bytes)
    t.cg_items;
  Buffer.contents buf
