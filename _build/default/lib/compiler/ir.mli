(** The multi-ISA compiler's intermediate representation.

    A conventional non-SSA three-address IR over virtual registers
    ("values"). Two properties matter for the multi-ISA design:

    - Comparison results never cross block boundaries as condition
      flags: branches ([Br]) carry their comparison, and materialized
      booleans go through [Cmpset]. Flags are therefore dead at every
      block entry, which is one prerequisite for migration safety.
    - Address-taken scalars and arrays live in an ISA-agnostic
      "locals area" addressed by byte offset; everything else is a
      value that the per-ISA register allocators place independently,
      recorded in the extended symbol table. *)

type value = int
type label = int

type rv = V of value | C of int

type instr =
  | Def of value * rv
  | Bin of Hipstr_isa.Minstr.binop * value * rv * rv
  | Cmpset of Hipstr_isa.Minstr.cond * value * rv * rv
      (** destination := 1 if [a cond b] else 0 *)
  | Load of value * rv * int  (** dst := mem\[addr + k\] *)
  | Store of rv * int * rv  (** mem\[addr + k\] := src *)
  | Addr_local of value * int  (** dst := sp-relative locals-area address *)
  | Addr_global of value * string
  | Addr_func of value * string  (** dst := code address (per-ISA) *)
  | Call of { dst : value option; callee : string; args : rv list; site : int }
  | Calli of { dst : value option; fp : rv; args : rv list; site : int }
      (** indirect call through a function pointer *)
  | Syscall of { dst : value option; number : rv; args : rv list }

type term =
  | Ret of rv option
  | Jmp of label
  | Br of Hipstr_isa.Minstr.cond * rv * rv * label * label
      (** if [a cond b] goto first label else second *)

type block = { b_label : label; b_instrs : instr array; b_term : term }

type func = {
  fn_name : string;
  fn_params : value list;  (** parameter i is this value *)
  fn_nvals : int;
  fn_locals_bytes : int;
  fn_blocks : block array;  (** index = label; block 0 is the entry *)
  fn_nsites : int;  (** number of call sites (direct + indirect) *)
  fn_fp_values : value list;
      (** values that may hold function addresses (static taint) *)
}

type program = {
  pr_funcs : func list;
  pr_globals : (string * int * int list) list;  (** name, words, init *)
}

val defs : instr -> value list
val uses : instr -> rv list
val term_uses : term -> rv list
val successors : term -> label list

val values_of_rvs : rv list -> value list

val instr_has_call : instr -> bool
(** Direct call, indirect call, or syscall: clobbers caller-saved
    registers. *)

val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit

val validate : program -> (unit, string) result
(** Structural sanity: labels in range, values within [fn_nvals],
    every site id unique and below [fn_nsites], entry exists, a [main]
    function exists. *)
