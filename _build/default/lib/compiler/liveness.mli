(** Backward liveness dataflow over IR values.

    The per-block live-in sets become the extended symbol table's
    basic-block records: they are exactly the state the multi-ISA
    runtime must transform when migrating at that block's entry, and
    the state the PSR translator's single-basic-block look-ahead
    liveness analysis consults at procedure call transformation. *)

type t

val analyze : Ir.func -> t

val live_in : t -> Ir.label -> int list
(** Sorted value ids live at block entry. *)

val live_out : t -> Ir.label -> int list

val live_across_call : t -> int list
(** Values live across at least one call or syscall (they must not be
    homed in caller-saved registers). *)

val live_across_syscall : t -> int list
(** Values live across at least one syscall (they must additionally
    avoid the syscall argument registers). *)

val crossing_at : t -> Ir.func -> Ir.label -> int -> int list
(** [crossing_at lv f l j] — values live across instruction [j] of
    block [l] (live after it, not defined by it). Used by the code
    generators at call and syscall instructions. *)

val use_counts : Ir.func -> int array
(** Static use+def counts per value, weighted by an approximation of
    loop depth (blocks that are targets of back edges and their
    bodies count 8x); drives register-allocation priority. *)
