lib/cisc/isa.mli: Hipstr_isa
