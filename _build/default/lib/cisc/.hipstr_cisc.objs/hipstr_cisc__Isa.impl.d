lib/cisc/isa.ml: Buffer Char Desc Hipstr_isa Hipstr_util Minstr
