(** The security experiments: Figures 3, 4, 5, 7, 8, Table 2, and the
    httpd case study of Section 7.1. Each function regenerates the
    rows/series the paper reports, as a printable table. *)

val table1 : unit -> Hipstr_util.Table.t
(** Core configurations (Table 1) — printed for reference. *)

val fig3_classic_rop : unit -> Hipstr_util.Table.t
(** Per benchmark: gadgets obfuscated vs unobfuscated under PSR. *)

val fig4_brute_force_surface : unit -> Hipstr_util.Table.t
(** Per benchmark: gadgets eliminated vs surviving (viable for brute
    force). *)

val table2_brute_force : unit -> Hipstr_util.Table.t
(** Per benchmark: randomizable parameters, entropy, attempts with and
    without register bias (Algorithm 1). *)

val fig5_jitrop : unit -> Hipstr_util.Table.t
(** Per benchmark: JIT-ROP attack surface in the code cache, gadgets
    flagging the VM, survivors under HIPStR, final residue. *)

val fig7_entropy : unit -> Hipstr_util.Table.t
(** Entropy vs gadget-chain length for the four defenses. *)

val fig8_tailored : unit -> Hipstr_util.Table.t
(** Attack surface vs diversification probability for tailored
    attacks. *)

val httpd_case_study : unit -> Hipstr_util.Table.t
(** The Section 7.1 httpd numbers plus a live exploit run: shell
    natively, stopped under PSR and HIPStR. *)

val ablation_pad_entropy : unit -> Hipstr_util.Table.t
(** Ablation: the security side of the pad-size dial (Figure 10 shows
    its cost side) — per-parameter entropy and brute-force attempts at
    2-64 KB pads, including the paper's observation that even a bare
    ret gadget faces pad-sized entropy. *)
