lib/experiments/harness.mli: Hipstr Hipstr_attacks Hipstr_isa Hipstr_psr Hipstr_workloads
