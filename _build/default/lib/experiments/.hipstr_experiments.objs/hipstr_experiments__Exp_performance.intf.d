lib/experiments/exp_performance.mli: Hipstr_util
