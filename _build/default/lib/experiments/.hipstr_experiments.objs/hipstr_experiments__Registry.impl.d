lib/experiments/registry.ml: Exp_performance Exp_security Hipstr_util List Printf
