lib/experiments/exp_performance.ml: Array Desc Harness Hashtbl Hipstr Hipstr_isa Hipstr_isomeron Hipstr_machine Hipstr_migration Hipstr_psr Hipstr_util Hipstr_workloads List Printf
