lib/experiments/exp_security.mli: Hipstr_util
