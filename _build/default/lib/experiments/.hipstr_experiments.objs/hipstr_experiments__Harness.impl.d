lib/experiments/harness.ml: Desc Hashtbl Hipstr Hipstr_attacks Hipstr_isa Hipstr_machine Hipstr_util Hipstr_workloads Printf
