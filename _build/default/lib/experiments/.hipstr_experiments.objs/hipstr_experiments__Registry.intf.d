lib/experiments/registry.mli: Hipstr_util
