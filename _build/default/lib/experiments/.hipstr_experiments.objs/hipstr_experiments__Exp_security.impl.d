lib/experiments/exp_security.ml: Desc Harness Hipstr Hipstr_attacks Hipstr_compiler Hipstr_galileo Hipstr_isa Hipstr_machine Hipstr_psr Hipstr_util Hipstr_workloads List Printf
