(** The performance experiments: Figures 6 and 9-14. *)

val fig6_migration_safety : unit -> Hipstr_util.Table.t
(** Percentage of migration-safe basic blocks per direction, baseline
    (call boundaries, prior work) vs on-demand. *)

val fig9_opt_levels : unit -> Hipstr_util.Table.t
(** Steady-state performance relative to native at PSR-O1/O2/O3. *)

val fig10_stack_sizes : unit -> Hipstr_util.Table.t
(** Performance at randomization pads of 8/16/32/64 KB (PSR-S8..S64). *)

val fig11_rat_sizes : unit -> Hipstr_util.Table.t
(** Performance overhead vs an unbounded RAT for 32..2048 entries. *)

val fig12_migration_overhead : unit -> Hipstr_util.Table.t
(** Forced migrations at random checkpoints: microseconds per
    direction (average of 10 checkpoints). *)

val fig13_cache_sizes : unit -> Hipstr_util.Table.t
(** Security-induced migration overhead vs code-cache capacity
    (capacities scaled to this repository's binary sizes). *)

val fig14_vs_isomeron : unit -> Hipstr_util.Table.t
(** Relative performance vs diversification probability: Isomeron,
    PSR+Isomeron, HIPStR with small and large code caches. *)
