module Table = Hipstr_util.Table
module Stats = Hipstr_util.Stats
module Rng = Hipstr_util.Rng
module Workloads = Hipstr_workloads.Workloads
module Safety = Hipstr_migration.Safety
module Transform = Hipstr_migration.Transform
module Isomeron = Hipstr_isomeron.Isomeron
module Config = Hipstr_psr.Config
module System = Hipstr.System
module Machine = Hipstr_machine.Machine
module Core_desc = Hipstr_machine.Core_desc
open Hipstr_isa

let fig6_migration_safety () =
  let t =
    Table.create
      [ "benchmark"; "x86->ARM baseline"; "x86->ARM on-demand"; "ARM->x86 baseline"; "ARM->x86 on-demand" ]
  in
  let od_c = ref [] and od_r = ref [] in
  List.iter
    (fun (w : Workloads.t) ->
      let fb = Workloads.fatbin w in
      let sc = Safety.summarize fb ~from_isa:Desc.Cisc in
      let sr = Safety.summarize fb ~from_isa:Desc.Risc in
      od_c := Safety.fraction_ondemand sc :: !od_c;
      od_r := Safety.fraction_ondemand sr :: !od_r;
      Table.add_row t
        [
          w.w_name;
          Stats.percent (Safety.fraction_baseline sc);
          Stats.percent (Safety.fraction_ondemand sc);
          Stats.percent (Safety.fraction_baseline sr);
          Stats.percent (Safety.fraction_ondemand sr);
        ])
    Harness.spec_workloads;
  Table.add_row t
    [ "average"; ""; Stats.percent (Stats.mean !od_c); ""; Stats.percent (Stats.mean !od_r) ];
  t

let fig9_opt_levels () =
  let t = Table.create [ "benchmark"; "PSR-O1"; "PSR-O2"; "PSR-O3"; "native" ] in
  let per_level = Array.make 4 [] in
  List.iter
    (fun (w : Workloads.t) ->
      let native = Harness.native_steady w in
      let rel lvl =
        let cfg = { Config.default with opt_level = lvl } in
        let _, p, _ = Harness.run_steady ~cfg ~seed:2 ~mode:System.Psr_only w in
        Harness.relative ~native p
      in
      let r1 = rel 1 and r2 = rel 2 and r3 = rel 3 in
      per_level.(1) <- r1 :: per_level.(1);
      per_level.(2) <- r2 :: per_level.(2);
      per_level.(3) <- r3 :: per_level.(3);
      Table.add_row t
        [ w.w_name; Stats.percent r1; Stats.percent r2; Stats.percent r3; "100.0%" ])
    Harness.spec_workloads;
  Table.add_row t
    [
      "average";
      Stats.percent (Stats.mean per_level.(1));
      Stats.percent (Stats.mean per_level.(2));
      Stats.percent (Stats.mean per_level.(3));
      "100.0%";
    ];
  t

let fig10_stack_sizes () =
  let pads = [ (8192, "PSR-S8"); (16384, "PSR-S16"); (32768, "PSR-S32"); (65536, "PSR-S64") ] in
  let t = Table.create ("benchmark" :: List.map snd pads) in
  let per_pad = Hashtbl.create 8 in
  List.iter
    (fun (w : Workloads.t) ->
      let native = Harness.native_steady w in
      let rels =
        List.map
          (fun (pad_bytes, label) ->
            let cfg = { Config.default with pad_bytes } in
            let _, p, _ = Harness.run_steady ~cfg ~seed:2 ~mode:System.Psr_only w in
            let r = Harness.relative ~native p in
            Hashtbl.replace per_pad label (r :: (try Hashtbl.find per_pad label with Not_found -> []));
            r)
          pads
      in
      Table.add_row t (w.w_name :: List.map Stats.percent rels))
    Harness.spec_workloads;
  Table.add_row t
    ("average" :: List.map (fun (_, label) -> Stats.percent (Stats.mean (Hashtbl.find per_pad label))) pads);
  t

let fig11_rat_sizes () =
  (* our binaries' call-site working sets are tens of sites, so the
     knee sits far left of the paper's 32..2048 sweep; sizes 1-2 show
     it *)
  let sizes = [ 1; 2; 4; 8; 32; 128; 512; 2048 ] in
  let t = Table.create ("benchmark" :: List.map (fun s -> Printf.sprintf "RAT %d" s) sizes) in
  let per_size = Hashtbl.create 8 in
  List.iter
    (fun (w : Workloads.t) ->
      let ideal =
        let cfg = { Config.default with rat_capacity = 1 lsl 20 } in
        let _, p, _ = Harness.run_steady ~cfg ~seed:2 ~mode:System.Psr_only w in
        p
      in
      let overheads =
        List.map
          (fun rat_capacity ->
            let cfg = { Config.default with rat_capacity } in
            let _, p, _ = Harness.run_steady ~cfg ~seed:2 ~mode:System.Psr_only w in
            let ov = (p.pf_cycles /. ideal.pf_cycles) -. 1. in
            Hashtbl.replace per_size rat_capacity
              (ov :: (try Hashtbl.find per_size rat_capacity with Not_found -> []));
            ov)
          sizes
      in
      Table.add_row t (w.w_name :: List.map Stats.percent overheads))
    Harness.spec_workloads;
  Table.add_row t
    ("average" :: List.map (fun s -> Stats.percent (Stats.mean (Hashtbl.find per_size s))) sizes);
  t

(* Force a migration at a random checkpoint and report its wall-clock
   cost on the destination core. *)
let one_migration (w : Workloads.t) ~from_isa ~checkpoint_fuel ~seed =
  let cfg = { Config.default with migrate_prob = 0.0 } in
  let sys = System.of_fatbin ~cfg ~seed ~start_isa:from_isa ~mode:System.Hipstr (Workloads.fatbin w) in
  match System.run sys ~fuel:checkpoint_fuel with
  | System.Out_of_fuel -> (
    System.request_migration sys;
    ignore (System.run sys ~fuel:w.w_fuel);
    match System.last_migration sys with
    | Some r ->
      let freq =
        match Desc.other from_isa with
        | Desc.Cisc -> Core_desc.x86.freq_ghz
        | Desc.Risc -> Core_desc.arm.freq_ghz
      in
      Some (r.Transform.r_cycles /. (freq *. 1000.)) (* microseconds *)
    | None -> None)
  | _ -> None

let fig12_migration_overhead () =
  let t = Table.create [ "benchmark"; "x86 -> ARM (us)"; "ARM -> x86 (us)" ] in
  let avg_c = ref [] and avg_r = ref [] in
  let rng = Rng.create 0xF16 in
  List.iter
    (fun (w : Workloads.t) ->
      let native = Harness.native_perf w in
      let measure from_isa =
        let samples =
          List.filter_map
            (fun i ->
              let checkpoint = 2000 + Rng.int rng (native.pf_instructions / 2) in
              one_migration w ~from_isa ~checkpoint_fuel:checkpoint ~seed:(100 + i))
            (List.init 10 (fun i -> i))
        in
        Stats.mean samples
      in
      let c = measure Desc.Cisc in
      let r = measure Desc.Risc in
      avg_c := c :: !avg_c;
      avg_r := r :: !avg_r;
      Table.add_row t [ w.w_name; Printf.sprintf "%.0f" c; Printf.sprintf "%.0f" r ])
    Harness.spec_workloads;
  Table.add_row t
    [
      "average";
      Printf.sprintf "%.0f" (Stats.mean !avg_c);
      Printf.sprintf "%.0f" (Stats.mean !avg_r);
    ];
  t

let fig13_cache_sizes () =
  let sizes_kb = [ 5; 6; 8; 10; 12; 16; 24; 48 ] in
  let t =
    Table.create
      ("code cache (KB)"
      :: (List.map (fun (w : Workloads.t) -> w.w_name) Harness.spec_workloads @ [ "average" ]))
  in
  let rows =
    List.map
      (fun kb ->
        let cfg = { Config.default with cache_bytes = kb * 1024; migrate_prob = 0.5 } in
        let overheads =
          List.map
            (fun (w : Workloads.t) ->
              let _, p, migrations = Harness.run_steady ~cfg ~seed:2 ~mode:System.Hipstr w in
              float_of_int migrations *. Transform.fixed_cycles /. p.pf_cycles)
            Harness.spec_workloads
        in
        (kb, overheads))
      sizes_kb
  in
  List.iter
    (fun (kb, overheads) ->
      Table.add_row t
        ((string_of_int kb :: List.map Stats.percent overheads)
        @ [ Stats.percent (Stats.mean overheads) ]))
    rows;
  t

let fig14_vs_isomeron () =
  let probs = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  (* the paper compares on the six common applications *)
  let six = List.filteri (fun i _ -> i < 6) Harness.spec_workloads in
  let t =
    Table.create
      [ "diversification p"; "Isomeron"; "PSR+Isomeron"; "HIPStR (8KB cache)"; "HIPStR (2MB cache)" ]
  in
  (* per-workload measurements reused across probabilities *)
  let per_w =
    List.map
      (fun (w : Workloads.t) ->
        let native = Harness.native_steady w in
        let _, psr, _ = Harness.run_steady ~seed:2 ~mode:System.Psr_only w in
        (w, native, psr))
      six
  in
  let hipstr_rel w native cache_bytes p seed =
    let cfg = { Config.default with cache_bytes; migrate_prob = p } in
    let _, perf, migrations = Harness.run_steady ~cfg ~seed ~mode:System.Hipstr w in
    (* charge the steady-state migrations' fixed cost explicitly so
       runs of different lengths compare fairly *)
    ignore migrations;
    Harness.relative ~native perf
  in
  List.iter
    (fun p ->
      let iso = Isomeron.create ~diversification_prob:p in
      let iso_rels =
        List.map
          (fun (_, native, _) ->
            Isomeron.relative_performance iso ~native_cycles:native.Harness.pf_cycles
              ~calls:native.Harness.pf_calls ~returns:native.Harness.pf_returns)
          per_w
      in
      let psr_iso_rels =
        List.map
          (fun ((_ : Workloads.t), native, psr) ->
            let extra = Isomeron.overhead_cycles iso ~calls:psr.Harness.pf_calls ~returns:psr.Harness.pf_returns in
            native.Harness.pf_cycles /. (psr.Harness.pf_cycles +. extra))
          per_w
      in
      let hip_small =
        List.map (fun (w, native, _) -> hipstr_rel w native (8 * 1024) p 2) per_w
      in
      let hip_big =
        List.map (fun (w, native, _) -> hipstr_rel w native (2 * 1024 * 1024) p 2) per_w
      in
      Table.add_row t
        [
          Printf.sprintf "%.2f" p;
          Stats.percent (Stats.mean iso_rels);
          Stats.percent (Stats.mean psr_iso_rels);
          Stats.percent (Stats.mean hip_small);
          Stats.percent (Stats.mean hip_big);
        ])
    probs;
  t
