(** Shared machinery for the per-figure experiment modules. *)

type perf = {
  pf_cycles : float;
  pf_instructions : int;
  pf_calls : int;
  pf_returns : int;
  pf_seconds : float;
}

val run_workload :
  ?cfg:Hipstr_psr.Config.t ->
  ?seed:int ->
  ?isa:Hipstr_isa.Desc.which ->
  mode:Hipstr.System.mode ->
  Hipstr_workloads.Workloads.t ->
  Hipstr.System.t * perf
(** Run to completion (fails loudly otherwise) and collect counters. *)

val run_steady :
  ?cfg:Hipstr_psr.Config.t ->
  ?seed:int ->
  ?isa:Hipstr_isa.Desc.which ->
  mode:Hipstr.System.mode ->
  Hipstr_workloads.Workloads.t ->
  Hipstr.System.t * perf * int
(** Like {!run_workload}, but counters cover only the steady-state
    window after a warmup of a quarter of the native instruction
    count — the paper's fast-forward methodology. The extra int is the
    number of security migrations within the window. *)

val native_steady : Hipstr_workloads.Workloads.t -> perf
(** Memoized steady-state native baseline. *)

val native_perf : Hipstr_workloads.Workloads.t -> perf
(** Memoized native run on the CISC core — the baseline for every
    relative-performance figure. *)

val relative : native:perf -> perf -> float
(** Relative performance (1.0 = native speed), by cycle count. *)

val surface_of : Hipstr_workloads.Workloads.t -> Hipstr_attacks.Surface.report
(** Memoized Figure 3/4 analysis for a workload (CISC). *)

val spec_workloads : Hipstr_workloads.Workloads.t list
val with_httpd : Hipstr_workloads.Workloads.t list

val pct : float -> string
val big : float -> string
val f2 : float -> string
