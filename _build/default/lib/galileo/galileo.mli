(** The Galileo gadget-mining algorithm (Shacham, CCS 2007).

    Scans code for every instruction sequence that ends in a return
    and could serve as a ROP gadget. On the CISC ISA, decoding starts
    at *every byte offset* before a 0xC3 byte, so unintentional
    gadgets hidden in immediates and displacements are found, exactly
    as on x86. On the RISC ISA only word-aligned decodes are possible,
    which is why its attack surface is dramatically smaller (the paper
    measures 52x on real ARM vs x86).

    Also mines JOP gadgets (sequences ending in an indirect jump or
    call) for the jump-oriented-programming attack surface. *)

type kind = Ret_gadget | Jop_gadget

type gadget = {
  g_addr : int;  (** address of the first instruction *)
  g_instrs : Hipstr_isa.Minstr.t list;  (** includes the terminator *)
  g_bytes : int;
  g_kind : kind;
  g_aligned : bool;  (** starts on an intended instruction boundary *)
}

val mine :
  ?max_back:int ->
  ?max_instrs:int ->
  read:(int -> int) ->
  which:Hipstr_isa.Desc.which ->
  ranges:(int * int) list ->
  ?aligned_starts:(int -> bool) ->
  unit ->
  gadget list
(** [mine ~read ~which ~ranges ()] finds all gadgets in the byte
    ranges [(start, size)]. [max_back] bounds the suffix search (24
    bytes by default), [max_instrs] the gadget length in instructions
    (6). [aligned_starts] marks intended instruction boundaries for
    the [g_aligned] flag (defaults to all unaligned). Gadgets are
    deduplicated by start address per kind. *)

val mine_program : Hipstr_machine.Mem.t -> Hipstr_compiler.Fatbin.t -> Hipstr_isa.Desc.which -> gadget list
(** Mine a loaded fat binary's code section for one ISA, with
    alignment information from the symbol table. *)

(** {2 Gadget effects}

    A small abstract interpretation of the gadget body classifying
    what it does with attacker-controlled stack data — the input both
    to viability analysis (Section 6) and to the brute-force
    simulation's parameter counts. *)

type effect = {
  e_pops : (int * int) list;
      (** registers populated from stack data: (register, sp offset) *)
  e_reg_reads : int list;  (** non-sp registers read *)
  e_reg_writes : int list;  (** non-sp registers written (any source) *)
  e_stack_slots : int list;  (** distinct sp-relative offsets accessed *)
  e_mem_writes : bool;  (** writes through a non-sp pointer *)
  e_has_syscall : bool;
  e_stack_delta : int option;  (** sp movement, if statically known *)
}

val classify : sp:int -> gadget -> effect

val is_viable : effect -> bool
(** The paper's viability criterion: the gadget populates at least
    one register with an attacker-supplied value from the stack. *)

val randomizable_params : effect -> int
(** The number of PSR-randomizable parameters the gadget exposes:
    distinct registers touched + distinct stack slots + one for the
    relocated return-address slot. Feeds Table 2. *)

val count : gadget list -> kind -> int
