open Hipstr_isa
module Minstr = Minstr

type kind = Ret_gadget | Jop_gadget

type gadget = {
  g_addr : int;
  g_instrs : Minstr.t list;
  g_bytes : int;
  g_kind : kind;
  g_aligned : bool;
}

let decode_for which ~read addr =
  match which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read addr

let terminator_kind (i : Minstr.t) =
  match i with
  | Ret | Retr _ -> Some Ret_gadget
  | Jmpr _ | Callr _ -> Some Jop_gadget
  | Retrat _ -> Some Ret_gadget (* RAT-mediated returns in translated code *)
  | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Jmp _ | Jcc _ | Call _ | Syscall | Nop
  | Trap _ | Callrat _ ->
    None

(* Decode a straight-line chain from [start] whose final instruction
   is the terminator at exactly [stop_at]; interior control flow
   disqualifies the chain (it would not fall through to the
   terminator). *)
let chain which ~read ~max_instrs start stop_at =
  let rec go addr n acc =
    if addr = stop_at then
      match decode_for which ~read addr with
      | None -> None
      | Some (i, len) -> (
        match terminator_kind i with
        | Some k -> Some (List.rev (i :: acc), addr + len - start, k)
        | None -> None)
    else if addr > stop_at || n >= max_instrs then None
    else
      match decode_for which ~read addr with
      | Some (i, len) when not (Minstr.is_control i) -> go (addr + len) (n + 1) (i :: acc)
      | Some _ | None -> None
  in
  go start 0 []

(* Find candidate terminator positions within a range. For CISC, any
   byte that decodes as a terminator; for RISC, aligned words only. *)
let terminator_positions which ~read start size =
  let positions = ref [] in
  let step = match which with Desc.Cisc -> 1 | Desc.Risc -> 4 in
  let pos = ref start in
  while !pos < start + size do
    (match decode_for which ~read !pos with
    | Some (i, len) -> (
      match terminator_kind i with
      | Some _ -> positions := (!pos, len) :: !positions
      | None -> ())
    | None -> ());
    pos := !pos + step
  done;
  List.rev !positions

let mine ?(max_back = 24) ?(max_instrs = 6) ~read ~which ~ranges ?(aligned_starts = fun _ -> false)
    () =
  let seen = Hashtbl.create 1024 in
  let gadgets = ref [] in
  let step = match which with Desc.Cisc -> 1 | Desc.Risc -> 4 in
  List.iter
    (fun (start, size) ->
      List.iter
        (fun (term_pos, term_len) ->
          (* Try every suffix start within max_back bytes, staying in
             range. The chain must consume the terminator exactly. *)
          ignore term_len;
          let lo = max start (term_pos - max_back) in
          let back = ref term_pos in
          while !back >= lo do
            let s = !back in
            (match chain which ~read ~max_instrs s term_pos with
            | Some (instrs, bytes, k) ->
              if not (Hashtbl.mem seen (s, k)) then begin
                Hashtbl.add seen (s, k) ();
                gadgets :=
                  {
                    g_addr = s;
                    g_instrs = instrs;
                    g_bytes = bytes;
                    g_kind = k;
                    g_aligned = aligned_starts s;
                  }
                  :: !gadgets
              end
            | _ -> ());
            back := !back - step
          done)
        (terminator_positions which ~read start size))
    ranges;
  List.rev !gadgets

let mine_program mem fb which =
  let read a = try Hipstr_machine.Mem.read8 mem a with Hipstr_machine.Mem.Fault _ -> -1 in
  let ranges = Hipstr_compiler.Fatbin.code_bytes fb which in
  (* Intended boundaries: decode each function linearly from its
     entry. *)
  let aligned = Hashtbl.create 4096 in
  List.iter
    (fun (start, size) ->
      let pos = ref start in
      let continue_ = ref true in
      while !continue_ && !pos < start + size do
        match decode_for which ~read !pos with
        | Some (_, len) ->
          Hashtbl.replace aligned !pos ();
          pos := !pos + len
        | None -> continue_ := false
      done)
    ranges;
  mine ~read ~which ~ranges ~aligned_starts:(Hashtbl.mem aligned) ()

type effect = {
  e_pops : (int * int) list;
  e_reg_reads : int list;
  e_reg_writes : int list;
  e_stack_slots : int list;
  e_mem_writes : bool;
  e_has_syscall : bool;
  e_stack_delta : int option;
}

type absval = Orig | Stack of int | Computed

let classify ~sp g =
  let regs = Array.make 16 Orig in
  let pops : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let reg_reads = ref [] in
  let reg_writes = ref [] in
  let slots = ref [] in
  let mem_writes = ref false in
  let has_syscall = ref false in
  let delta = ref (Some 0) in
  let note_read r = if r <> sp then reg_reads := r :: !reg_reads in
  let note_write r = if r <> sp then reg_writes := r :: !reg_writes in
  let note_slot k = slots := k :: !slots in
  let read_operand (op : Minstr.operand) =
    match op with
    | Reg r ->
      note_read r;
      if r < 16 && r >= 0 then regs.(r) else Computed
    | Imm _ -> Computed
    | Mem { base; disp } ->
      if base = sp then begin
        (match !delta with Some d -> note_slot (d + disp) | None -> ());
        match !delta with Some d -> Stack (d + disp) | None -> Computed
      end
      else begin
        note_read base;
        Computed
      end
  in
  let write_operand (op : Minstr.operand) v =
    match op with
    | Reg r ->
      note_write r;
      if r < 16 && r >= 0 then begin
        regs.(r) <- v;
        (* pops reflect the register's *final* contents: a later
           overwrite cancels the pop *)
        match v with
        | Stack off -> Hashtbl.replace pops r off
        | Orig | Computed -> Hashtbl.remove pops r
      end
    | Mem { base; disp } ->
      if base = sp then (match !delta with Some d -> note_slot (d + disp) | None -> ())
      else begin
        note_read base;
        mem_writes := true
      end
    | Imm _ -> ()
  in
  let bump_sp k = match !delta with Some d -> delta := Some (d + k) | None -> () in
  List.iter
    (fun (i : Minstr.t) ->
      match i with
      | Mov (d, s) -> (
        match d with
        | Reg r when r = sp ->
          ignore (read_operand s);
          delta := None
        | _ ->
          let v = read_operand s in
          write_operand d v)
      | Lea (d, b, _) ->
        if b <> sp then note_read b;
        if d = sp then delta := None
        else begin
          note_write d;
          regs.(d) <- Computed;
          Hashtbl.remove pops d
        end
      | Binop (op, d, s) -> (
        match (d, op, s) with
        | Reg r, Minstr.Add, Imm k when r = sp -> bump_sp k
        | Reg r, Minstr.Sub, Imm k when r = sp -> bump_sp (-k)
        | Reg r, _, _ when r = sp ->
          ignore (read_operand s);
          delta := None
        | _ ->
          ignore (read_operand s);
          ignore (read_operand d);
          write_operand d Computed)
      | Cmp (a, b) ->
        ignore (read_operand a);
        ignore (read_operand b)
      | Push s ->
        ignore (read_operand s);
        (match !delta with Some d -> note_slot (d - 4) | None -> ());
        bump_sp (-4)
      | Pop d -> (
        match d with
        | Reg r when r = sp -> delta := None
        | _ ->
          let v = match !delta with Some d' -> Stack d' | None -> Computed in
          (match !delta with Some d' -> note_slot d' | None -> ());
          bump_sp 4;
          write_operand d v)
      | Ret | Retrat _ -> bump_sp 4
      | Retr r -> note_read r
      | Jmpr s | Callr s -> ignore (read_operand s)
      | Syscall -> has_syscall := true
      | Jmp _ | Jcc _ | Call _ | Callrat _ | Nop | Trap _ -> ())
    g.g_instrs;
  {
    e_pops = Hashtbl.fold (fun r off acc -> (r, off) :: acc) pops [] |> List.sort compare;
    e_reg_reads = List.sort_uniq compare !reg_reads;
    e_reg_writes = List.sort_uniq compare !reg_writes;
    e_stack_slots = List.sort_uniq compare !slots;
    e_mem_writes = !mem_writes;
    e_has_syscall = !has_syscall;
    e_stack_delta = !delta;
  }

let is_viable e = e.e_pops <> []

let randomizable_params e =
  let regs = List.sort_uniq compare (e.e_reg_reads @ e.e_reg_writes) in
  List.length regs + List.length e.e_stack_slots + 1

let count gadgets kind = List.length (List.filter (fun g -> g.g_kind = kind) gadgets)
