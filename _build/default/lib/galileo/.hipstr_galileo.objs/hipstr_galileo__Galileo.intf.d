lib/galileo/galileo.mli: Hipstr_compiler Hipstr_isa Hipstr_machine
