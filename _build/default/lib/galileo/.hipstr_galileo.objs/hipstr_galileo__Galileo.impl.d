lib/galileo/galileo.ml: Array Desc Hashtbl Hipstr_cisc Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_risc List Minstr
