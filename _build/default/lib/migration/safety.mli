(** Migration-safety analysis (Section 5.2, Figure 6).

    A basic block's entry is an *equivalence point* where the
    multi-ISA runtime can transform the program state from one ISA's
    representation to the other's. Two policies are analyzed:

    - {e baseline} (prior work, DeVuyst et al. / Venkat & Tullsen):
      migration only at call boundaries — function entries and blocks
      containing a call — which the paper reports as ~45% of blocks;
    - {e on-demand}: migration at any block entry where every live-in
      value is transformable. Our runtime transforms slot-homed values
      and values in callee-class registers; values cached in
      caller-class (volatile) registers by the two ISAs' independent
      register-caching are declared non-transformable at arbitrary
      points, mirroring the residual limitation the paper reports
      (~78% safe). Condition-flag state is dead at every block entry
      by IR construction, so flags never block migration.

    Directionality: migrating *out of* an ISA requires that ISA's
    homes to be stable, so each direction is judged against the source
    ISA's allocation. *)

type verdict = { v_baseline : bool; v_ondemand : bool }

val block_safety :
  Hipstr_compiler.Fatbin.func_sym -> Hipstr_isa.Desc.which -> int -> verdict
(** Safety of migrating *from* the given ISA at this block's entry. *)

type summary = {
  s_blocks : int;
  s_baseline_safe : int;
  s_ondemand_safe : int;
}

val summarize : Hipstr_compiler.Fatbin.t -> from_isa:Hipstr_isa.Desc.which -> summary
(** Aggregate over every block of every function. *)

val fraction_ondemand : summary -> float
val fraction_baseline : summary -> float
