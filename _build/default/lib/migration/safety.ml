module Fatbin = Hipstr_compiler.Fatbin
module Ir = Hipstr_compiler.Ir
open Hipstr_isa

type verdict = { v_baseline : bool; v_ondemand : bool }

let caller_class which =
  let desc = match which with Desc.Cisc -> Hipstr_cisc.Isa.desc | Risc -> Hipstr_risc.Isa.desc in
  (* The result register is part of the call-boundary contract, so the
     runtime always knows where it is; only the remaining volatile
     registers are opaque at arbitrary points. *)
  List.filter (fun r -> r <> desc.ret_reg) desc.caller_saved

let block_has_call (fs : Fatbin.func_sym) l =
  Array.exists Ir.instr_has_call fs.fs_ir.Ir.fn_blocks.(l).Ir.b_instrs

(* Baseline equivalence points (prior work): function entries, call
   blocks, and the blocks control reaches right after a call. *)
let call_boundary (fs : Fatbin.func_sym) l =
  l = 0 || block_has_call fs l
  || Array.exists
       (fun (b : Ir.block) ->
         block_has_call fs b.Ir.b_label && List.mem l (Ir.successors b.Ir.b_term))
       fs.fs_ir.Ir.fn_blocks

let block_safety (fs : Fatbin.func_sym) which l =
  let im = Fatbin.image fs which in
  let volatile = caller_class which in
  let live_in = fs.fs_live_in.(l) in
  let transformable v =
    match im.im_homes.(v) with
    | Fatbin.Lslot _ -> true
    | Fatbin.Lreg r -> not (List.mem r volatile)
  in
  let ondemand = List.for_all transformable live_in in
  let baseline = call_boundary fs l in
  { v_baseline = baseline; v_ondemand = ondemand }

type summary = { s_blocks : int; s_baseline_safe : int; s_ondemand_safe : int }

let summarize (fb : Fatbin.t) ~from_isa =
  let blocks = ref 0 and base = ref 0 and od = ref 0 in
  Array.iter
    (fun fs ->
      Array.iteri
        (fun l _ ->
          incr blocks;
          let v = block_safety fs from_isa l in
          if v.v_baseline then incr base;
          if v.v_ondemand then incr od)
        fs.Fatbin.fs_ir.Ir.fn_blocks)
    fb.fb_funcs;
  { s_blocks = !blocks; s_baseline_safe = !base; s_ondemand_safe = !od }

let fraction_ondemand s = if s.s_blocks = 0 then 0. else float_of_int s.s_ondemand_safe /. float_of_int s.s_blocks

let fraction_baseline s = if s.s_blocks = 0 then 0. else float_of_int s.s_baseline_safe /. float_of_int s.s_blocks
