lib/migration/transform.mli: Hipstr_compiler Hipstr_machine Hipstr_psr
