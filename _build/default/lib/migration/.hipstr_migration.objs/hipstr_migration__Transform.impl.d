lib/migration/transform.ml: Array Desc Hipstr_cisc Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_psr Hipstr_risc List
