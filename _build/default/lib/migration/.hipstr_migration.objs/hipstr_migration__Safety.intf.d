lib/migration/safety.mli: Hipstr_compiler Hipstr_isa
