lib/migration/safety.ml: Array Desc Hipstr_cisc Hipstr_compiler Hipstr_isa Hipstr_risc List
