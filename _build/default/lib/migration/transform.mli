(** PSR-aware cross-ISA program state transformation (Sections 3.2
    and 5.2).

    Migration happens at equivalence points — return events and
    indirect-call events — where, by the compiler's caller-save
    discipline, every live caller value sits in a frame slot. The
    transformation walks the stack frame by frame and, for each frame:

    - moves every value slot from its source-ISA (possibly
      PSR-relocated) offset to its destination-ISA offset;
    - moves the locals and outgoing regions as blocks;
    - rewrites the frame's return address from a source-ISA call-site
      address to the matching destination-ISA call-site address (the
      fat binary's call-site table matches sites across ISAs);
    - rewrites function-pointer-tainted slot values from source-ISA
      entry addresses to destination-ISA entries.

    Because the two ISAs share the symmetric frame layout and the same
    randomization pad size, the stack pointer itself is valid on both
    sides and frames are transformed in place (read-all-then-write-all
    per frame).

    When the walk meets a return address that is not a known call
    site — the attack case — transformation stops there and the
    migration reports the resume target as unmappable: the exploit's
    payload has just been relocated out from under it.

    The fixed VM cost of a migration is charged on the *destination*
    core, which is what makes an ARM-to-x86 migration cheaper in wall
    clock than x86-to-ARM (Figure 12): the same cycle count at 3.3 GHz
    vs 2 GHz. *)

type mode =
  | Native  (** identity maps: heterogeneous-ISA migration without PSR *)
  | Psr of {
      map_from : Hipstr_compiler.Fatbin.func_sym -> Hipstr_psr.Reloc_map.t;
      map_to : Hipstr_compiler.Fatbin.func_sym -> Hipstr_psr.Reloc_map.t;
    }

type result = {
  r_frames : int;  (** frames transformed *)
  r_words : int;  (** words moved *)
  r_resume_src : int option;
      (** destination-ISA source address to resume at; [None] when the
          migration target was not legitimate (attack) *)
  r_complete : bool;  (** false when the stack walk hit an unmappable frame *)
  r_cycles : float;  (** cycles charged on the destination core *)
}

val fixed_cycles : float
(** The per-migration VM constant (documented calibration: ~3M cycles,
    i.e. ~0.9 ms onto the 3.3 GHz core and ~1.5 ms onto the 2 GHz
    core). *)

val at_return :
  Hipstr_machine.Machine.t ->
  Hipstr_compiler.Fatbin.t ->
  mode ->
  target_src:int ->
  result
(** Migrate at a return event whose source-ISA return target is
    [target_src]. Transforms memory, switches the active core, and
    charges the migration cost. The caller resumes execution at
    [r_resume_src] (or kills the process). *)

val at_call :
  Hipstr_machine.Machine.t ->
  Hipstr_compiler.Fatbin.t ->
  mode ->
  call_src:int ->
  target_src:int ->
  nargs:int ->
  result
(** Migrate at an indirect-call event at source address [call_src]
    whose runtime target is [target_src]. Also moves the staged
    arguments into the destination callee's randomized argument slots
    when the target is a legitimate function entry ([r_resume_src] is
    then the destination entry). *)
