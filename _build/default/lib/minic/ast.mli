(** MiniC abstract syntax.

    MiniC is the C subset the workloads are written in: [int] scalars,
    fixed-size [int] arrays (local and global), pointers as integers,
    function definitions, function pointers (address-of a function
    plus indirect calls),
    and the usual statements and operators. The paper compiles SPEC C
    benchmarks with an LLVM-based multi-ISA compiler; MiniC plays the
    role of C here, compiled by [Hipstr_compiler] to both ISAs.

    There is no [alloca] and no variable-length arrays — the paper
    excludes gcc and sjeng for using them, and the PSR implementation
    requires fixed-size frames. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuit *)

type unop = Neg | Not | Bnot

type expr =
  | Num of int
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of lvalue * expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | Call of string * expr list
  | Call_ptr of expr * expr list  (** indirect call through [e] *)
  | Index of string * expr  (** [a\[i\]] for array or pointer variable [a] *)
  | Deref of expr  (** [*e] *)
  | Addr_var of string  (** [&x] — also takes the address of an array *)
  | Addr_index of string * expr  (** [&a\[i\]] *)
  | Addr_fun of string  (** [&f] where [f] is a function *)

and lvalue =
  | Lvar of string
  | Lindex of string * expr
  | Lderef of expr

type stmt =
  | Decl of string * int option * expr option
      (** [int x;], [int a\[n\];], [int x = e;] *)
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Print of expr  (** [print(e);] — the observable output trace *)

type func = { f_name : string; f_params : string list; f_body : stmt list }

type global = {
  g_name : string;
  g_size : int;  (** in words; 1 for a scalar *)
  g_init : int list;  (** initial words; zero-filled to [g_size] *)
}

type program = { globals : global list; funcs : func list }

val func_names : program -> string list

val find_func : program -> string -> func option
