(** MiniC lexical analysis. *)

type token =
  | INT_KW | IF | ELSE | WHILE | DO | FOR | RETURN | BREAK | CONTINUE | PRINT
  | IDENT of string
  | NUM of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | ASSIGN | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG | TILDE | QUESTION | COLON
  | EOF

exception Error of string
(** Carries a message with the line number. *)

val tokenize : string -> (token * int) list
(** All tokens with their line numbers, ending with [EOF].
    Handles decimal and hex literals, [//] and [/* */] comments. *)

val describe : token -> string
