type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Not | Bnot

type expr =
  | Num of int
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of lvalue * expr
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Call_ptr of expr * expr list
  | Index of string * expr
  | Deref of expr
  | Addr_var of string
  | Addr_index of string * expr
  | Addr_fun of string

and lvalue = Lvar of string | Lindex of string * expr | Lderef of expr

type stmt =
  | Decl of string * int option * expr option
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Print of expr

type func = { f_name : string; f_params : string list; f_body : stmt list }

type global = { g_name : string; g_size : int; g_init : int list }

type program = { globals : global list; funcs : func list }

let func_names p = List.map (fun f -> f.f_name) p.funcs

let find_func p name = List.find_opt (fun f -> f.f_name = name) p.funcs
