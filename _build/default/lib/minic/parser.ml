open Lexer

exception Error of string

type state = { mutable toks : (token * int) list }

let fail_at line msg = raise (Error (Printf.sprintf "line %d: %s" line msg))

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got, line = next st in
  if got <> tok then
    fail_at line (Printf.sprintf "expected %s but found %s" (describe tok) (describe got))

let expect_ident st =
  match next st with
  | IDENT s, _ -> s
  | got, line -> fail_at line (Printf.sprintf "expected identifier, found %s" (describe got))

let expect_num st =
  match next st with
  | NUM k, _ -> k
  | MINUS, _ -> (
    match next st with
    | NUM k, _ -> -k
    | got, line -> fail_at line (Printf.sprintf "expected number, found %s" (describe got)))
  | got, line -> fail_at line (Printf.sprintf "expected number, found %s" (describe got))

let lvalue_of_expr line = function
  | Ast.Var x -> Ast.Lvar x
  | Ast.Index (a, i) -> Ast.Lindex (a, i)
  | Ast.Deref e -> Ast.Lderef e
  | _ -> fail_at line "left side of assignment is not assignable"

(* Expression parsing: precedence climbing. *)

let rec parse_expression st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | ASSIGN, line ->
    advance st;
    let rhs = parse_assign st in
    Ast.Assign (lvalue_of_expr line lhs, rhs)
  | _ -> lhs

and parse_ternary st =
  let c = parse_lor st in
  match peek st with
  | QUESTION, _ ->
    advance st;
    let a = parse_assign st in
    expect st COLON;
    let b = parse_ternary st in
    Ast.Cond (c, a, b)
  | _ -> c

and parse_lor st =
  let rec loop acc =
    match peek st with
    | OROR, _ ->
      advance st;
      loop (Ast.Bin (Ast.Lor, acc, parse_land st))
    | _ -> acc
  in
  loop (parse_land st)

and parse_land st =
  let rec loop acc =
    match peek st with
    | ANDAND, _ ->
      advance st;
      loop (Ast.Bin (Ast.Land, acc, parse_bitor st))
    | _ -> acc
  in
  loop (parse_bitor st)

and parse_bitor st =
  let rec loop acc =
    match peek st with
    | PIPE, _ ->
      advance st;
      loop (Ast.Bin (Ast.Or, acc, parse_bitxor st))
    | _ -> acc
  in
  loop (parse_bitxor st)

and parse_bitxor st =
  let rec loop acc =
    match peek st with
    | CARET, _ ->
      advance st;
      loop (Ast.Bin (Ast.Xor, acc, parse_bitand st))
    | _ -> acc
  in
  loop (parse_bitand st)

and parse_bitand st =
  let rec loop acc =
    match peek st with
    | AMP, _ ->
      advance st;
      loop (Ast.Bin (Ast.And, acc, parse_equality st))
    | _ -> acc
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop acc =
    match peek st with
    | EQ, _ ->
      advance st;
      loop (Ast.Bin (Ast.Eq, acc, parse_relational st))
    | NE, _ ->
      advance st;
      loop (Ast.Bin (Ast.Ne, acc, parse_relational st))
    | _ -> acc
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop acc =
    match peek st with
    | LT, _ ->
      advance st;
      loop (Ast.Bin (Ast.Lt, acc, parse_shift st))
    | LE, _ ->
      advance st;
      loop (Ast.Bin (Ast.Le, acc, parse_shift st))
    | GT, _ ->
      advance st;
      loop (Ast.Bin (Ast.Gt, acc, parse_shift st))
    | GE, _ ->
      advance st;
      loop (Ast.Bin (Ast.Ge, acc, parse_shift st))
    | _ -> acc
  in
  loop (parse_shift st)

and parse_shift st =
  let rec loop acc =
    match peek st with
    | SHL, _ ->
      advance st;
      loop (Ast.Bin (Ast.Shl, acc, parse_additive st))
    | SHR, _ ->
      advance st;
      loop (Ast.Bin (Ast.Shr, acc, parse_additive st))
    | _ -> acc
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop acc =
    match peek st with
    | PLUS, _ ->
      advance st;
      loop (Ast.Bin (Ast.Add, acc, parse_multiplicative st))
    | MINUS, _ ->
      advance st;
      loop (Ast.Bin (Ast.Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | STAR, _ ->
      advance st;
      loop (Ast.Bin (Ast.Mul, acc, parse_unary st))
    | SLASH, _ ->
      advance st;
      loop (Ast.Bin (Ast.Div, acc, parse_unary st))
    | PERCENT, _ ->
      advance st;
      loop (Ast.Bin (Ast.Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | MINUS, _ ->
    advance st;
    Ast.Un (Ast.Neg, parse_unary st)
  | BANG, _ ->
    advance st;
    Ast.Un (Ast.Not, parse_unary st)
  | TILDE, _ ->
    advance st;
    Ast.Un (Ast.Bnot, parse_unary st)
  | STAR, _ ->
    advance st;
    Ast.Deref (parse_unary st)
  | AMP, line -> (
    advance st;
    match next st with
    | IDENT name, _ -> (
      match peek st with
      | LBRACKET, _ ->
        advance st;
        let i = parse_expression st in
        expect st RBRACKET;
        Ast.Addr_index (name, i)
      | _ -> Ast.Addr_var name)
    | got, l -> fail_at (max line l) (Printf.sprintf "expected identifier after '&', found %s" (describe got)))
  | _ -> parse_postfix st

and parse_args st =
  expect st LPAREN;
  match peek st with
  | RPAREN, _ ->
    advance st;
    []
  | _ ->
    let rec loop acc =
      let e = parse_assign st in
      match next st with
      | COMMA, _ -> loop (e :: acc)
      | RPAREN, _ -> List.rev (e :: acc)
      | got, line -> fail_at line (Printf.sprintf "expected ',' or ')', found %s" (describe got))
    in
    loop []

and parse_postfix st =
  let base = parse_primary st in
  match (base, peek st) with
  | Ast.Deref f, (LPAREN, _) -> Ast.Call_ptr (f, parse_args st)
  | _ -> base

and parse_primary st =
  match next st with
  | NUM k, _ -> Ast.Num k
  | IDENT name, _ -> (
    match peek st with
    | LPAREN, _ -> Ast.Call (name, parse_args st)
    | LBRACKET, _ ->
      advance st;
      let i = parse_expression st in
      expect st RBRACKET;
      Ast.Index (name, i)
    | _ -> Ast.Var name)
  | LPAREN, _ ->
    let e = parse_expression st in
    expect st RPAREN;
    e
  | got, line -> fail_at line (Printf.sprintf "expected expression, found %s" (describe got))

(* Statements. *)

let rec parse_stmt st =
  match peek st with
  | INT_KW, _ ->
    advance st;
    let name = expect_ident st in
    let size =
      match peek st with
      | LBRACKET, _ ->
        advance st;
        let n = expect_num st in
        expect st RBRACKET;
        Some n
      | _ -> None
    in
    let init =
      match peek st with
      | ASSIGN, line ->
        advance st;
        if size <> None then fail_at line "local arrays cannot have initializers";
        Some (parse_expression st)
      | _ -> None
    in
    expect st SEMI;
    Ast.Decl (name, size, init)
  | IF, _ ->
    advance st;
    expect st LPAREN;
    let c = parse_expression st in
    expect st RPAREN;
    let then_branch = parse_block_or_stmt st in
    let else_branch =
      match peek st with
      | ELSE, _ ->
        advance st;
        parse_block_or_stmt st
      | _ -> []
    in
    Ast.If (c, then_branch, else_branch)
  | WHILE, _ ->
    advance st;
    expect st LPAREN;
    let c = parse_expression st in
    expect st RPAREN;
    Ast.While (c, parse_block_or_stmt st)
  | DO, _ ->
    advance st;
    let body = parse_block_or_stmt st in
    expect st WHILE;
    expect st LPAREN;
    let c = parse_expression st in
    expect st RPAREN;
    expect st SEMI;
    Ast.Do_while (body, c)
  | FOR, _ ->
    advance st;
    expect st LPAREN;
    let init =
      match peek st with
      | SEMI, _ ->
        advance st;
        None
      | INT_KW, _ -> Some (parse_stmt st) (* Decl consumes its ';' *)
      | _ ->
        let e = parse_expression st in
        expect st SEMI;
        Some (Ast.Expr e)
    in
    let cond =
      match peek st with
      | SEMI, _ -> None
      | _ -> Some (parse_expression st)
    in
    expect st SEMI;
    let step =
      match peek st with
      | RPAREN, _ -> None
      | _ -> Some (parse_expression st)
    in
    expect st RPAREN;
    Ast.For (init, cond, step, parse_block_or_stmt st)
  | RETURN, _ ->
    advance st;
    let v =
      match peek st with
      | SEMI, _ -> None
      | _ -> Some (parse_expression st)
    in
    expect st SEMI;
    Ast.Return v
  | BREAK, _ ->
    advance st;
    expect st SEMI;
    Ast.Break
  | CONTINUE, _ ->
    advance st;
    expect st SEMI;
    Ast.Continue
  | PRINT, _ ->
    advance st;
    expect st LPAREN;
    let e = parse_expression st in
    expect st RPAREN;
    expect st SEMI;
    Ast.Print e
  | _ ->
    let e = parse_expression st in
    expect st SEMI;
    Ast.Expr e

and parse_block st =
  expect st LBRACE;
  let rec loop acc =
    match peek st with
    | RBRACE, _ ->
      advance st;
      List.rev acc
    | EOF, line -> fail_at line "unterminated block"
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_block_or_stmt st =
  match peek st with
  | LBRACE, _ -> parse_block st
  | _ -> [ parse_stmt st ]

(* Top level. *)

let parse_global_init st =
  match peek st with
  | LBRACE, _ ->
    advance st;
    let rec loop acc =
      let k = expect_num st in
      match next st with
      | COMMA, _ -> loop (k :: acc)
      | RBRACE, _ -> List.rev (k :: acc)
      | got, line -> fail_at line (Printf.sprintf "expected ',' or '}', found %s" (describe got))
    in
    loop []
  | _ -> [ expect_num st ]

let parse_toplevel st =
  expect st INT_KW;
  let name = expect_ident st in
  match peek st with
  | LPAREN, _ ->
    advance st;
    let params =
      match peek st with
      | RPAREN, _ ->
        advance st;
        []
      | _ ->
        let rec loop acc =
          expect st INT_KW;
          let p = expect_ident st in
          match next st with
          | COMMA, _ -> loop (p :: acc)
          | RPAREN, _ -> List.rev (p :: acc)
          | got, line -> fail_at line (Printf.sprintf "expected ',' or ')', found %s" (describe got))
        in
        loop []
    in
    let body = parse_block st in
    `Func { Ast.f_name = name; f_params = params; f_body = body }
  | LBRACKET, _ ->
    advance st;
    let size = expect_num st in
    expect st RBRACKET;
    let init =
      match peek st with
      | ASSIGN, _ ->
        advance st;
        parse_global_init st
      | _ -> []
    in
    expect st SEMI;
    `Global { Ast.g_name = name; g_size = size; g_init = init }
  | ASSIGN, _ ->
    advance st;
    let init = parse_global_init st in
    expect st SEMI;
    `Global { Ast.g_name = name; g_size = 1; g_init = init }
  | SEMI, _ ->
    advance st;
    `Global { Ast.g_name = name; g_size = 1; g_init = [] }
  | got, line -> fail_at line (Printf.sprintf "unexpected %s at top level" (describe got))

let parse src =
  let st = { toks = (try Lexer.tokenize src with Lexer.Error m -> raise (Error m)) } in
  let rec loop globals funcs =
    match peek st with
    | EOF, _ -> { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | _ -> (
      match parse_toplevel st with
      | `Func f -> loop globals (f :: funcs)
      | `Global g -> loop (g :: globals) funcs)
  in
  loop [] []

let parse_expr src =
  let st = { toks = (try Lexer.tokenize src with Lexer.Error m -> raise (Error m)) } in
  let e = parse_expression st in
  (match peek st with
  | EOF, _ -> ()
  | got, line -> fail_at line (Printf.sprintf "trailing %s after expression" (describe got)));
  e
