(** MiniC recursive-descent parser.

    Produces an {!Ast.program}; all syntax errors raise {!Error} with
    a line number. Operator precedence follows C. *)

exception Error of string

val parse : string -> Ast.program
(** Parse a complete translation unit. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests). *)
