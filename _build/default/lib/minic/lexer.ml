type token =
  | INT_KW | IF | ELSE | WHILE | DO | FOR | RETURN | BREAK | CONTINUE | PRINT
  | IDENT of string
  | NUM of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | ASSIGN | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG | TILDE | QUESTION | COLON
  | EOF

exception Error of string

let keyword = function
  | "int" -> Some INT_KW
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "do" -> Some DO
  | "for" -> Some FOR
  | "return" -> Some RETURN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | "print" -> Some PRINT
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let fail msg = raise (Error (Printf.sprintf "line %d: %s" !line msg)) in
  let rec go i =
    if i >= n then emit EOF
    else
      let c = src.[i] in
      match c with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then fail "unterminated comment"
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then incr line;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '0' when i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X') ->
        let rec scan j = if j < n && is_hex src.[j] then scan (j + 1) else j in
        let j = scan (i + 2) in
        if j = i + 2 then fail "bad hex literal";
        emit (NUM (int_of_string (String.sub src i (j - i))));
        go j
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let j = scan i in
        emit (NUM (int_of_string (String.sub src i (j - i))));
        go j
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub src i (j - i) in
        emit (match keyword word with Some k -> k | None -> IDENT word);
        go j
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | '^' -> emit CARET; go (i + 1)
      | '~' -> emit TILDE; go (i + 1)
      | '?' -> emit QUESTION; go (i + 1)
      | ':' -> emit COLON; go (i + 1)
      | '&' ->
        if i + 1 < n && src.[i + 1] = '&' then begin emit ANDAND; go (i + 2) end
        else begin emit AMP; go (i + 1) end
      | '|' ->
        if i + 1 < n && src.[i + 1] = '|' then begin emit OROR; go (i + 2) end
        else begin emit PIPE; go (i + 1) end
      | '<' ->
        if i + 1 < n && src.[i + 1] = '<' then begin emit SHL; go (i + 2) end
        else if i + 1 < n && src.[i + 1] = '=' then begin emit LE; go (i + 2) end
        else begin emit LT; go (i + 1) end
      | '>' ->
        if i + 1 < n && src.[i + 1] = '>' then begin emit SHR; go (i + 2) end
        else if i + 1 < n && src.[i + 1] = '=' then begin emit GE; go (i + 2) end
        else begin emit GT; go (i + 1) end
      | '=' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit EQ; go (i + 2) end
        else begin emit ASSIGN; go (i + 1) end
      | '!' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit NE; go (i + 2) end
        else begin emit BANG; go (i + 1) end
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !toks

let describe = function
  | INT_KW -> "'int'"
  | IF -> "'if'"
  | ELSE -> "'else'"
  | WHILE -> "'while'"
  | DO -> "'do'"
  | FOR -> "'for'"
  | RETURN -> "'return'"
  | BREAK -> "'break'"
  | CONTINUE -> "'continue'"
  | PRINT -> "'print'"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUM k -> Printf.sprintf "number %d" k
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | TILDE -> "'~'"
  | QUESTION -> "'?'"
  | COLON -> "':'"
  | EOF -> "end of input"
