lib/minic/lexer.mli:
