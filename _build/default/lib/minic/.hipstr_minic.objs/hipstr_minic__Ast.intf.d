lib/minic/ast.mli:
