lib/core/system.ml: Array Desc Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_migration Hipstr_psr Hipstr_util List
