lib/core/system.mli: Hipstr_compiler Hipstr_isa Hipstr_machine Hipstr_migration Hipstr_psr
