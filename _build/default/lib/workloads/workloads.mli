(** The benchmark programs.

    Eight MiniC programs model the kernels of the SPEC CPU2006 C
    benchmarks the paper evaluates (gcc and sjeng are excluded in the
    paper for variable-size frames, and here too), plus [httpd], the
    network-facing daemon of Section 7.1 that serves as the attack
    victim. Each prints a small deterministic checksum so that
    native/PSR/HIPStR runs can be compared exactly.

    [httpd] reads its "network input" from the [net_input]/[net_len]
    globals, which the attack harness pokes directly into simulated
    memory; its request-line copy loop is intentionally unbounded —
    the buffer-overflow vulnerability every experiment exploits. *)

type t = {
  w_name : string;
  w_paper_name : string;  (** the SPEC benchmark it stands in for *)
  w_src : string;
  w_fuel : int;  (** enough instructions to finish natively *)
  w_description : string;
}

val all : t list
(** The eight SPEC-like workloads, in the paper's order: bzip2, gobmk,
    hmmer, lbm, libquantum, mcf, milc, sphinx3. *)

val httpd : t

val find : string -> t
(** By [w_name], including ["httpd"]. @raise Not_found *)

val names : string list

val full_source : t -> string
(** The workload source with the MiniC standard library ({!Libc})
    linked in front, as compiled by {!fatbin}. Gadget mining covers
    the whole image, library included, as in the paper. *)

val fatbin : t -> Hipstr_compiler.Fatbin.t
(** Compile [full_source] (memoized). *)
