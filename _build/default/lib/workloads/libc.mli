(** The MiniC standard library linked into every workload image. *)

val source : string
(** String/memory utilities, arithmetic helpers, sorting/searching,
    and hashing routines with their genuine published round constants
    (FNV, Murmur3, FarmHash, XTEA, SHA-256 K values, CRC-32, PCG,
    SplitMix). Real binaries owe most of their gadget mass to library
    code and constant-rich immediates; this module plays that role. *)
