lib/workloads/libc.mli:
