lib/workloads/workloads.ml: Hashtbl Hipstr_compiler Libc List
