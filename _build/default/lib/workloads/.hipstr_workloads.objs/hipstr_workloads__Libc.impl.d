lib/workloads/libc.ml:
