lib/workloads/workloads.mli: Hipstr_compiler
