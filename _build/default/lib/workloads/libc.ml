(* The MiniC standard library linked into every workload binary.

   The paper mines gadgets over whole program images, where most of
   the attack surface comes from library code; this module plays that
   role. The hashing/crypto routines use their genuine published
   round constants — large immediates are where unintended gadget
   bytes live in real x86 binaries, and they serve the same purpose
   here. *)

let source =
  {|
// ------- string/memory utilities (word-oriented) -------

int lib_memcpy(int dst, int src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
  return dst;
}

int lib_memset(int dst, int v, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = v; }
  return dst;
}

int lib_memcmp(int a, int b, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (a[i] != b[i]) { return (a[i] < b[i]) ? 0 - 1 : 1; }
  }
  return 0;
}

int lib_strlen(int s) {
  int n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}

int lib_strcmp(int a, int b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

int lib_strcpy(int dst, int src) {
  int i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i = i + 1; }
  dst[i] = 0;
  return dst;
}

int lib_strchr(int s, int c) {
  int i = 0;
  while (s[i] != 0) {
    if (s[i] == c) { return i; }
    i = i + 1;
  }
  return 0 - 1;
}

int lib_atoi(int s) {
  int i = 0;
  int sign = 1;
  int v = 0;
  if (s[0] == 45) { sign = 0 - 1; i = 1; }
  while (s[i] >= 48 && s[i] <= 57) { v = v * 10 + (s[i] - 48); i = i + 1; }
  return v * sign;
}

// ------- arithmetic helpers -------

int lib_abs(int x) { return x < 0 ? 0 - x : x; }
int lib_min(int a, int b) { return a < b ? a : b; }
int lib_max(int a, int b) { return a > b ? a : b; }

int lib_gcd(int a, int b) {
  a = lib_abs(a);
  b = lib_abs(b);
  while (b != 0) { int t = a % b; a = b; b = t; }
  return a;
}

int lib_ipow(int base, int e) {
  int r = 1;
  while (e > 0) {
    if (e & 1) { r = r * base; }
    base = base * base;
    e = e >> 1;
  }
  return r;
}

int lib_isqrt(int n) {
  if (n < 2) { return n; }
  int x = n;
  int y = (x + 1) / 2;
  while (y < x) { x = y; y = (x + n / x) / 2; }
  return x;
}

int lib_clz(int x) {
  if (x == 0) { return 32; }
  int n = 0;
  while ((x & 0x40000000) == 0 && n < 31) { x = x << 1; n = n + 1; }
  return n;
}

int lib_popcount(int x) {
  int n = 0;
  int i;
  for (i = 0; i < 32; i = i + 1) { n = n + ((x >> i) & 1); }
  return n;
}

// ------- sorting and searching -------

int lib_sort(int a, int n) {
  int i;
  for (i = 1; i < n; i = i + 1) {
    int key = a[i];
    int j = i - 1;
    while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j = j - 1; }
    a[j + 1] = key;
  }
  return 0;
}

int lib_bsearch(int a, int n, int key) {
  int lo = 0;
  int hi = n - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (a[mid] == key) { return mid; }
    if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
  }
  return 0 - 1;
}

// ------- hashing: genuine published round constants -------

int lib_fnv1a(int p, int n) {
  int h = 0x811C9DC5;
  int i;
  for (i = 0; i < n; i = i + 1) { h = (h ^ p[i]) * 0x01000193; }
  return h;
}

int lib_murmur_mix(int h) {
  h = h ^ (h >> 16);
  h = h * 0x85EBCA6B;
  h = h ^ (h >> 13);
  h = h * 0xC2B2AE35;
  h = h ^ (h >> 16);
  return h;
}

int lib_farmhash_shift_mix(int v) { return v ^ (v >> 23); }

int lib_farmhash_mul(int a, int b) {
  // k0/k1/k2 from FarmHash
  int k0 = 0xC3A5C85C;
  int k1 = 0xB492B66F;
  int k2 = 0x9AE16A3B;
  return (a * k0) ^ (b * k1) ^ ((a + b) * k2);
}

int lib_xtea_round(int v0, int v1, int key_word, int sum) {
  return v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key_word + 0x9E3779B9));
}

int lib_sha256_sigma(int x) {
  int a = ((x >> 7) | (x << 25));
  int b = ((x >> 18) | (x << 14));
  return a ^ b ^ (x >> 3);
}

int lib_sha256_round(int h, int w) {
  // the first sixteen K constants of SHA-256
  h = lib_murmur_mix(h + w + 0x428A2F98);
  h = h ^ (h >> 11) ^ 0x71374491;
  h = h * 5 + 0xB5C0FBCF;
  h = h ^ 0xE9B5DBA5;
  h = lib_murmur_mix(h ^ 0x3956C25B);
  h = h + 0x59F111F1;
  h = h ^ 0x923F82A4;
  h = h * 3 + 0xAB1C5ED5;
  h = h ^ 0xD807AA98;
  h = h + 0x12835B01;
  h = h ^ 0x243185BE;
  h = lib_murmur_mix(h + 0x550C7DC3);
  h = h ^ 0x72BE5D74;
  h = h + 0x80DEB1FE;
  h = h ^ 0x9BDC06A7;
  h = h * 7 + 0xC19BF174;
  return h;
}

int lib_crc32_step(int crc, int byte_v) {
  int c = (crc ^ byte_v) & 255;
  int k;
  for (k = 0; k < 8; k = k + 1) {
    if (c & 1) { c = (c >> 1) ^ 0xEDB88320; } else { c = c >> 1; }
  }
  return (crc >> 8) ^ c;
}

int lib_adler32(int p, int n) {
  int a = 1;
  int b = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    a = (a + p[i]) % 65521;
    b = (b + a) % 65521;
  }
  return (b << 16) | a;
}

int lib_pcg_next(int state) {
  return state * 0x5851F42D + 0xC0FFEEC3;
}

int lib_splitmix(int z) {
  z = z + 0x9E3779B9;
  z = (z ^ (z >> 16)) * 0x21F0AAAD;
  z = (z ^ (z >> 15)) * 0x735A2D97;
  return z ^ (z >> 15);
}

int lib_rotl(int x, int k) { return (x << k) | (x >> (32 - k)); }

int lib_xoshiro_scramble(int a, int b) {
  return lib_rotl(a * 0x0F4C3C2D, 7) * 9 + lib_rotl(b, 11) + 0xD96EB1C3;
}

int lib_checksum(int p, int n) {
  int h = 0xCBF29CE4;
  int i;
  for (i = 0; i < n; i = i + 1) {
    h = lib_xoshiro_scramble(h, p[i]);
    h = h ^ lib_farmhash_mul(h, p[i] + 0xA0761D64);
  }
  return h;
}

// ------- formatting -------

int lib_itoa(int v, int out) {
  int i = 0;
  int neg = 0;
  if (v < 0) { neg = 1; v = 0 - v; }
  if (v == 0) { out[0] = 48; i = 1; }
  while (v > 0) { out[i] = 48 + (v % 10); v = v / 10; i = i + 1; }
  if (neg) { out[i] = 45; i = i + 1; }
  // reverse in place
  int j;
  for (j = 0; j < i / 2; j = j + 1) {
    int t = out[j];
    out[j] = out[i - 1 - j];
    out[i - 1 - j] = t;
  }
  out[i] = 0;
  return i;
}

int lib_hex_digit(int v) {
  v = v & 15;
  return v < 10 ? 48 + v : 87 + v;
}
|}
