(** Isomeron (Davi et al., NDSS 2015) — the state-of-the-art JIT-ROP
    defense the paper compares against.

    Isomeron keeps two versions of the program — the original and a
    diversified twin — and flips a coin at *every function call and
    return* to decide which version executes next, so an attacker
    cannot predict which variant a gadget will run in: a chain of
    [n] gadgets succeeds with probability 2^-n.

    We model Isomeron rather than re-implement its instrumentation
    (the substitution is recorded in DESIGN.md): its security is fully
    captured by the per-gadget coin flip, and its performance by the
    per-call/return shepherding cost. Davi et al. report that their
    program shepherding "renders CPU optimizations like branch
    prediction ineffective"; accordingly the cost model charges, for
    every dynamic call and return, an execution-path-diversifier
    lookup plus a return-address-prediction miss. The model is applied
    to instruction/call/return/cycle counts measured by running the
    workload natively on the simulator. *)

type t

val create : diversification_prob:float -> t
(** [diversification_prob] is the coin-flip probability per
    call/return (1.0 = classic Isomeron; lower values model the
    partial-diversification sweep of Figures 8 and 14). *)

val diversification_prob : t -> float

val shepherd_cycles_per_event : float
(** Dispatcher lookup + twin-table access per call/return. *)

val mispredict_cycles : float
(** The return-address-stack benefit lost on every diversified
    return. *)

val overhead_cycles :
  t -> calls:int -> returns:int -> float
(** Extra cycles Isomeron adds to an execution with these dynamic
    call/return counts. *)

val relative_performance :
  t -> native_cycles:float -> calls:int -> returns:int -> float
(** Performance relative to native (1.0 = native speed). *)

val chain_success_probability : t -> chain_len:int -> float
(** Probability an [n]-gadget same-variant chain executes as intended:
    each gadget independently survives with probability
    [1 - p + p/2]. *)

val entropy_bits : t -> chain_len:int -> float
(** The defense's entropy against that chain: -log2 of the success
    probability (= [chain_len] bits at p = 1). *)

val gadget_unaffected_probability : reg_operands:int -> float
(** Probability a gadget behaves identically in both program variants
    (the tailored-attack escape hatch of Section 7.1): the twin is a
    register-permuted clone, so a gadget with no register operands is
    unaffected, and each register operand survives only if the
    permutation fixes it. *)
