type t = { prob : float }

let create ~diversification_prob =
  if diversification_prob < 0. || diversification_prob > 1. then
    invalid_arg "Isomeron.create: probability out of range";
  { prob = diversification_prob }

let diversification_prob t = t.prob

(* Calibration: Davi et al. report roughly 19% overhead on SPEC from
   per-call/return shepherding with branch prediction defeated. Our
   workloads make fewer calls per instruction than SPEC, so the
   per-event cost is set to land Isomeron's total overhead in the same
   band (the dispatcher indirection, twin-table lookup and lost
   return-address-stack prediction together). *)
let shepherd_cycles_per_event = 55.
let mispredict_cycles = 18.

let overhead_cycles t ~calls ~returns =
  let events = float_of_int (calls + returns) in
  (* The dispatcher runs on every event; the misprediction cost is
     paid only when the coin actually diverts execution. *)
  (events *. shepherd_cycles_per_event) +. (events *. t.prob *. mispredict_cycles)

let relative_performance t ~native_cycles ~calls ~returns =
  native_cycles /. (native_cycles +. overhead_cycles t ~calls ~returns)

let chain_success_probability t ~chain_len =
  let per_gadget = 1. -. (t.prob /. 2.) in
  per_gadget ** float_of_int chain_len

let entropy_bits t ~chain_len =
  let p = chain_success_probability t ~chain_len in
  if p <= 0. then infinity else -.(log p /. log 2.)

let gadget_unaffected_probability ~reg_operands =
  (* A register-permuted twin over an 8-register file fixes a given
     register with probability ~1/8; a gadget is unaffected only if
     every register operand is fixed. *)
  if reg_operands <= 0 then 1.0 else (1. /. 8.) ** float_of_int reg_operands
