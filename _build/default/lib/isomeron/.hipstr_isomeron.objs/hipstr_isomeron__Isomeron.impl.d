lib/isomeron/isomeron.ml:
