lib/isomeron/isomeron.mli:
